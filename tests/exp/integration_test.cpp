// End-to-end validation: the black-box measurement pipeline must
// recover the biases planted in the application profiles, and the
// offline (trace-file) analysis path must agree exactly with the
// online path.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "exp/testbed.hpp"
#include "p2p/swarm.hpp"
#include "trace/io.hpp"

namespace peerscope::exp {
namespace {

using util::SimTime;

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

// Mid-size experiments shared by several assertions (built once).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RunSpec tvants;
    tvants.profile = p2p::SystemProfile::tvants();
    tvants.profile.population.background_peers = 400;
    tvants.seed = 42;
    tvants.duration = SimTime::seconds(60);
    tvants_ = new RunResult(run_experiment(topo(), tvants));

    RunSpec sopcast;
    sopcast.profile = p2p::SystemProfile::sopcast();
    sopcast.profile.population.background_peers = 800;
    sopcast.seed = 42;
    sopcast.duration = SimTime::seconds(60);
    sopcast_ = new RunResult(run_experiment(topo(), sopcast));
  }
  static void TearDownTestSuite() {
    delete tvants_;
    delete sopcast_;
    tvants_ = nullptr;
    sopcast_ = nullptr;
  }

  static const RunResult* tvants_;
  static const RunResult* sopcast_;
};

const RunResult* IntegrationTest::tvants_ = nullptr;
const RunResult* IntegrationTest::sopcast_ = nullptr;

TEST_F(IntegrationTest, BandwidthPreferenceRecoveredEverywhere) {
  for (const RunResult* result : {tvants_, sopcast_}) {
    const auto rows = aware::awareness_table(result->observations);
    const auto& bw = rows[0];
    ASSERT_TRUE(bw.download.b_prime_pct.has_value());
    ASSERT_TRUE(bw.download.p_prime_pct.has_value());
    // Strong BW preference: most contributors high-bw, even more of
    // the bytes (paper: P' 83-86, B' 96-98).
    EXPECT_GT(*bw.download.p_prime_pct, 60.0);
    EXPECT_GT(*bw.download.b_prime_pct, 85.0);
    EXPECT_GE(*bw.download.b_prime_pct, *bw.download.p_prime_pct);
  }
}

TEST_F(IntegrationTest, TvantsIsAsAwareSopcastIsNot) {
  const auto tvants_rows = aware::awareness_table(tvants_->observations);
  const auto sopcast_rows = aware::awareness_table(sopcast_->observations);
  const auto& tvants_as = tvants_rows[1].download;
  const auto& sopcast_as = sopcast_rows[1].download;

  // TVAnts finds same-AS peers far above SopCast's base rate and
  // moves disproportionate bytes through them.
  ASSERT_TRUE(tvants_as.p_prime_pct.has_value());
  ASSERT_TRUE(sopcast_as.p_prime_pct.has_value());
  EXPECT_GT(*tvants_as.p_prime_pct, *sopcast_as.p_prime_pct);
  EXPECT_GT(*tvants_as.b_prime_pct, *sopcast_as.b_prime_pct);
  // SopCast: no byte-over-peer amplification (location-blind).
  EXPECT_LT(*sopcast_as.b_prime_pct, *sopcast_as.p_prime_pct + 3.0);
}

TEST_F(IntegrationTest, CcPreferenceIsInducedByAsPreference) {
  // Non-NAPA CC preference tracks the AS preference (no system uses
  // the country explicitly), paper §IV-B.
  const auto rows = aware::awareness_table(tvants_->observations);
  const auto& as_cell = rows[1].download;
  const auto& cc_cell = rows[2].download;
  ASSERT_TRUE(cc_cell.b_prime_pct.has_value());
  EXPECT_GE(*cc_cell.b_prime_pct, *as_cell.b_prime_pct - 1.0);
  EXPECT_LT(*cc_cell.b_prime_pct, *as_cell.b_prime_pct + 15.0);
}

TEST_F(IntegrationTest, NetPreferenceOnlyExistsWithProbes) {
  const auto rows = aware::awareness_table(tvants_->observations);
  const auto& net_cell = rows[3].download;
  // Same-subnet peers are probes only: the non-NAPA statistic is
  // structurally empty (the paper prints "-").
  EXPECT_FALSE(net_cell.p_prime_pct.has_value());
  // With probes included the preference appears.
  ASSERT_TRUE(net_cell.p_pct.has_value());
  EXPECT_GT(*net_cell.b_pct, 0.0);
}

TEST_F(IntegrationTest, SelfInducedBiasVisibleAndFilterable) {
  const aware::SelfBias bias = aware::self_bias(tvants_->observations);
  // Probes exchange disproportionately among themselves: byte share
  // exceeds peer share (Table III).
  EXPECT_GT(bias.contributors_peer_pct, 5.0);
  EXPECT_GT(bias.contributors_bytes_pct, bias.contributors_peer_pct);
}

TEST_F(IntegrationTest, HopMedianNearNineteen) {
  double median_sum = 0;
  std::size_t probes = 0;
  for (const auto& per_probe : tvants_->observations.per_probe) {
    median_sum += aware::median_hops(per_probe);
    ++probes;
  }
  const double median = median_sum / static_cast<double>(probes);
  // The paper measures medians of 18-20 across applications.
  EXPECT_GT(median, 15.0);
  EXPECT_LT(median, 23.0);
}

TEST_F(IntegrationTest, GeoBreakdownIsChinaDominated) {
  const auto shares = aware::geo_breakdown(tvants_->observations);
  ASSERT_EQ(shares.size(), 6u);
  EXPECT_EQ(shares[0].cc, net::kChina);
  // CN has the plurality of peers (Fig. 1)...
  for (std::size_t i = 1; i < shares.size(); ++i) {
    EXPECT_GT(shares[0].peer_pct, shares[i].peer_pct);
  }
  // ...but European countries take a disproportionate byte share:
  // sum of HU/IT/FR/PL byte shares exceeds their peer shares.
  double eu_peers = 0, eu_bytes = 0;
  for (std::size_t i = 1; i <= 4; ++i) {
    eu_peers += shares[i].peer_pct;
    eu_bytes += shares[i].rx_bytes_pct;
  }
  EXPECT_GT(eu_bytes, eu_peers);
}

TEST_F(IntegrationTest, AsMatrixIntraBiasOrdering) {
  const auto tvants_matrix = aware::as_traffic_matrix(tvants_->observations);
  const auto sopcast_matrix =
      aware::as_traffic_matrix(sopcast_->observations);
  // Fig. 2: TVAnts favours intra-AS probe traffic (R ~ 1.9), SopCast
  // does not (R ~ 0.2).
  EXPECT_GT(tvants_matrix.intra_inter_ratio,
            sopcast_matrix.intra_inter_ratio);
  EXPECT_EQ(tvants_matrix.ases.size(), 6u);  // AS1..AS6
}

TEST(OfflinePath, TraceFilesReproduceOnlineAnalysis) {
  // Run a small experiment keeping raw records, write every probe's
  // trace to disk, read it back, rebuild flow tables offline, and
  // compare the full awareness table against the online one.
  RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 100;
  spec.seed = 7;
  spec.duration = SimTime::seconds(20);
  spec.keep_records = true;

  const Testbed testbed = Testbed::table1();
  p2p::SwarmConfig config;
  config.profile = spec.profile;
  config.seed = spec.seed;
  config.duration = spec.duration;
  config.keep_records = true;
  p2p::Swarm swarm{topo(), testbed.probes(), config};
  swarm.run();

  const auto online = extract_observations(swarm);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("peerscope_integration_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  aware::ExperimentObservations offline;
  offline.app = online.app;
  offline.duration = online.duration;
  offline.probes = online.probes;
  const auto& pop = swarm.population();
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const auto path = dir / ("probe" + std::to_string(i) + ".psct");
    trace::write_trace(path, swarm.sink(i).probe(), swarm.sink(i).records());
    const trace::TraceFile file = trace::read_trace(path);
    const trace::FlowTable flows =
        trace::FlowTable::from_records(file.probe, file.records);
    offline.per_probe.push_back(aware::extract_observations(
        flows, pop.registry(), pop.probe_addrs()));
  }
  std::filesystem::remove_all(dir);

  const auto online_rows = aware::awareness_table(online);
  const auto offline_rows = aware::awareness_table(offline);
  ASSERT_EQ(online_rows.size(), offline_rows.size());
  for (std::size_t i = 0; i < online_rows.size(); ++i) {
    const auto cmp = [&](const std::optional<double>& a,
                         const std::optional<double>& b) {
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_DOUBLE_EQ(*a, *b);
      }
    };
    cmp(online_rows[i].download.b_pct, offline_rows[i].download.b_pct);
    cmp(online_rows[i].download.p_pct, offline_rows[i].download.p_pct);
    cmp(online_rows[i].download.b_prime_pct,
        offline_rows[i].download.b_prime_pct);
    cmp(online_rows[i].upload.b_pct, offline_rows[i].upload.b_pct);
    cmp(online_rows[i].upload.p_pct, offline_rows[i].upload.p_pct);
  }

  const auto online_bias = aware::self_bias(online);
  const auto offline_bias = aware::self_bias(offline);
  EXPECT_DOUBLE_EQ(online_bias.contributors_bytes_pct,
                   offline_bias.contributors_bytes_pct);
}

TEST(PlantedBiasAblation, StrongerAsWeightMovesMoreBytes) {
  // Methodology validation in miniature: sweep the planted same-AS
  // scheduling weight and confirm the recovered byte preference is
  // monotone in it.
  // Discovery bias off so the scheduling weight is the only planted
  // locality signal; aggregate over seeds (the same-AS contributor set
  // is small at test scale, so single runs are noisy).
  const auto recovered_byte_pref = [](double weight) {
    aware::PreferenceCounts total;
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      RunSpec spec;
      spec.profile = p2p::SystemProfile::tvants();
      spec.profile.population.background_peers = 520;
      spec.profile.select.same_as = weight;
      spec.profile.discovery_as_bias = 0.0;
      spec.seed = seed;
      spec.duration = SimTime::seconds(60);
      const RunResult result = run_experiment(topo(), spec);
      aware::PreferenceOptions opt;
      opt.exclude_napa = true;
      for (const auto& per_probe : result.observations.per_probe) {
        total.merge(aware::evaluate_preference(
            per_probe, aware::as_partition(), opt));
      }
    }
    return total.byte_pct();
  };
  const double off = recovered_byte_pref(0.0);
  const double on = recovered_byte_pref(12.0);
  EXPECT_GT(on, off * 1.3) << "off=" << off << " on=" << on;
}

}  // namespace
}  // namespace peerscope::exp
