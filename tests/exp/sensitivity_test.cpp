#include "exp/sensitivity.hpp"

#include <gtest/gtest.h>

namespace peerscope::exp {
namespace {

TEST(Sensitivity, FoldsReplicationsIntoDistributions) {
  const net::AsTopology topo = net::make_reference_topology();
  p2p::SystemProfile profile = p2p::SystemProfile::tvants();
  profile.population.background_peers = 120;
  const std::uint64_t seeds[] = {1, 2, 3};
  util::ThreadPool pool{2};

  const SensitivityResult result = run_sensitivity(
      topo, profile, util::SimTime::seconds(20), seeds, pool);

  EXPECT_EQ(result.app, "TVAnts");
  EXPECT_EQ(result.replications, 3u);
  ASSERT_EQ(result.metrics.size(), 5u);
  EXPECT_EQ(result.metrics[0].metric, aware::Metric::kBw);

  // Every replication contributes to evaluable cells.
  EXPECT_EQ(result.metrics[0].download.b_prime.count(), 3u);
  EXPECT_EQ(result.metrics[1].download.p.count(), 3u);
  // BW upload is never evaluable.
  EXPECT_EQ(result.metrics[0].upload.b.count(), 0u);
  // NET primes are structurally suppressed.
  EXPECT_EQ(result.metrics[3].download.b_prime.count(), 0u);

  // The BW preference must be robustly strong in every replication.
  EXPECT_GT(result.metrics[0].download.b_prime.min(), 60.0);
  EXPECT_EQ(result.rx_kbps_mean.count(), 3u);
  EXPECT_GT(result.rx_kbps_mean.mean(), 200.0);
  EXPECT_EQ(result.self_bias_bytes_pct.count(), 3u);
}

TEST(Sensitivity, DistinctSeedsProduceSpread) {
  const net::AsTopology topo = net::make_reference_topology();
  p2p::SystemProfile profile = p2p::SystemProfile::tvants();
  profile.population.background_peers = 120;
  const std::uint64_t seeds[] = {10, 11, 12, 13};
  util::ThreadPool pool{2};
  const SensitivityResult result = run_sensitivity(
      topo, profile, util::SimTime::seconds(15), seeds, pool);
  // Run-to-run noise exists (stddev strictly positive) but does not
  // destroy the headline statistic.
  EXPECT_GT(result.metrics[0].download.b_prime.stddev(), 0.0);
  EXPECT_LT(result.metrics[0].download.b_prime.stddev(), 20.0);
}

}  // namespace
}  // namespace peerscope::exp
