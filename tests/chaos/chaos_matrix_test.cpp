// Storage chaos matrix: every fault class, against every injection
// point, against every artifact consumer. The contract under test is
// the tentpole's no-silent-truncation guarantee:
//
//   * a faulted WRITE either completes (transient faults are absorbed
//     by retry loops) or throws — and on throw the destination is
//     never partial: it keeps its previous contents or does not
//     exist, and no temp file is leaked;
//   * a faulted/corrupted READ either returns complete data, throws
//     (strict), or — in salvage mode — returns a report whose
//     accounting reconciles exactly against what the writer declared.
//
// Every cell must land in one of those documented outcomes; a crash,
// hang, or silently short artifact fails the suite. The CLI-level
// half of the matrix (exit codes, metrics sidecars) lives in
// tools/chaos_sweep.sh.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "trace/binary_format.hpp"
#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "util/io_faults.hpp"

namespace peerscope {
namespace {

using net::Ipv4Addr;
using util::io::FaultPlan;

class ChaosMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_chaos_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    util::io::clear_faults();
    std::filesystem::remove_all(dir_);
  }

  std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void expect_no_temp_litter(const std::string& cell) {
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                std::string::npos)
          << cell << ": leaked temp file " << entry.path();
    }
  }

  std::filesystem::path dir_;
};

std::vector<trace::PacketRecord> chaos_records(std::size_t n) {
  std::vector<trace::PacketRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::PacketRecord r;
    r.ts = util::SimTime{static_cast<std::int64_t>(i * 131 + 7)};
    r.remote = Ipv4Addr{static_cast<std::uint32_t>(0x14000000 + i)};
    r.bytes = static_cast<std::int32_t>(64 + i % 1300);
    r.dir = i % 2 ? trace::Direction::kTx : trace::Direction::kRx;
    r.kind = i % 4 ? sim::PacketKind::kVideo : sim::PacketKind::kSignaling;
    r.ttl = static_cast<std::uint8_t>(96 + i % 32);
    records.push_back(r);
  }
  return records;
}

// One writer consumer the matrix drives; `write` throws on hard
// faults, `valid` strict-reads the artifact back.
struct WriterCell {
  const char* name;
  void (*write)(const std::filesystem::path&,
                const std::vector<trace::PacketRecord>&);
  bool (*valid)(const std::filesystem::path&,
                const std::vector<trace::PacketRecord>&);
};

const WriterCell kWriters[] = {
    {"binary-trace",
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       trace::write_trace_binary(p, Ipv4Addr{0x0a000001}, r, 32);
     },
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       return trace::read_trace_binary(p).records.size() == r.size();
     }},
    {"classic-trace",
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       trace::write_trace(p, Ipv4Addr{0x0a000001}, r);
     },
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       return trace::read_trace(p).records.size() == r.size();
     }},
    {"pcap",
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       trace::write_pcap(p, Ipv4Addr{0x0a000001}, r);
     },
     [](const std::filesystem::path& p,
        const std::vector<trace::PacketRecord>& r) {
       return trace::read_pcap(p, Ipv4Addr{0x0a000001}).size() == r.size();
     }},
};

// Transient faults must be absorbed: the write completes and the
// artifact strict-reads back whole.
TEST_F(ChaosMatrixTest, TransientWriteFaultsAreAbsorbedByEveryWriter) {
  const auto records = chaos_records(200);
  const char* schedules[] = {"eintr@5", "short-write@13",
                             "eintr@2,short-write@3,short-write@900"};
  for (const auto& writer : kWriters) {
    for (const char* spec : schedules) {
      const std::string cell =
          std::string{writer.name} + " x " + spec;
      util::io::install_faults(FaultPlan::parse(spec));
      const auto path = dir_ / (cell + ".bin");
      ASSERT_NO_THROW(writer.write(path, records)) << cell;
      EXPECT_TRUE(writer.valid(path, records)) << cell;
      expect_no_temp_litter(cell);
    }
  }
}

// Hard faults must fail loudly and atomically: exception out, temp
// cleaned, previous version intact.
TEST_F(ChaosMatrixTest, HardWriteFaultsFailCleanlyForEveryWriter) {
  const auto records = chaos_records(200);
  const char* schedules[] = {"enospc@500", "fsync-fail", "rename-fail"};
  for (const auto& writer : kWriters) {
    for (const char* spec : schedules) {
      const std::string cell =
          std::string{writer.name} + " x " + spec;
      const auto path = dir_ / (cell + ".bin");
      // Seed a previous version the failed overwrite must not damage.
      util::io::clear_faults();
      writer.write(path, chaos_records(10));
      const std::string before = slurp(path);

      util::io::install_faults(
          FaultPlan::parse(std::string{spec} + ":" + cell));
      EXPECT_THROW(writer.write(path, records), std::runtime_error)
          << cell;
      expect_no_temp_litter(cell);
      EXPECT_EQ(slurp(path), before) << cell << ": destination changed";
    }
  }
}

// A bit flip slips past the write path (the disk lied) — the binary
// format's CRCs must catch it on read, strictly or with accounting.
TEST_F(ChaosMatrixTest, BitflipsAreCaughtOnReadWithExactAccounting) {
  const auto records = chaos_records(500);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::string cell = "bitflip seed=" + std::to_string(seed);
    util::io::install_faults(FaultPlan::parse("bitflip", seed));
    const auto path = dir_ / (cell + ".psct");
    trace::write_trace_binary(path, Ipv4Addr{0x0a000001}, records, 32);
    ASSERT_EQ(util::io::fault_counters().bitflips, 1u) << cell;
    util::io::clear_faults();

    // Strict: corruption is never silently returned. (A flip inside a
    // sync marker or frame header may still parse the records
    // themselves — every payload is independently checksummed — so
    // "throws" is not guaranteed; "correct or throws" is.)
    try {
      const trace::TraceFile strict = trace::read_trace_binary(path);
      ASSERT_EQ(strict.records.size(), records.size()) << cell;
    } catch (const std::runtime_error&) {
      // Documented outcome: detection.
    }

    // Salvage: never throws, and the ledger reconciles exactly.
    trace::SalvageReport rep;
    const trace::TraceFile got = trace::read_trace_binary_salvage(path, &rep);
    ASSERT_TRUE(rep.header_valid || got.records.empty()) << cell;
    if (rep.header_valid) {
      EXPECT_EQ(rep.records_recovered + rep.records_skipped, records.size())
          << cell << ": salvage accounting does not reconcile";
      EXPECT_EQ(got.records.size(), rep.records_recovered) << cell;
    }
  }
}

// Read-side faults against every reader: strict readers throw or
// succeed, salvage readers account, nothing crashes.
TEST_F(ChaosMatrixTest, ShortReadsNeverYieldSilentlyTruncatedData) {
  const auto records = chaos_records(300);
  const auto path = dir_ / "short_read.psct";
  trace::write_trace_binary(path, Ipv4Addr{0x0a000001}, records, 32);
  const auto classic = dir_ / "short_read_classic.psct";
  trace::write_trace(classic, Ipv4Addr{0x0a000001}, records);

  for (const char* spec : {"short-read@100", "short-read", "eintr@4"}) {
    const std::string cell = std::string{"binary x "} + spec;
    util::io::install_faults(FaultPlan::parse(spec));
    try {
      const auto got = trace::read_trace_binary(path);
      EXPECT_EQ(got.records.size(), records.size()) << cell;
    } catch (const std::runtime_error&) {
      // Truncation detected — documented outcome.
    }

    util::io::install_faults(FaultPlan::parse(spec));
    trace::SalvageReport rep;
    const auto got = trace::read_trace_binary_salvage(path, &rep);
    EXPECT_EQ(got.records.size(), rep.records_recovered) << cell;
    if (rep.header_valid) {
      EXPECT_EQ(rep.records_recovered + rep.records_skipped,
                records.size())
          << cell;
    }

    const std::string classic_cell = std::string{"classic x "} + spec;
    util::io::install_faults(FaultPlan::parse(spec));
    try {
      const auto strict = trace::read_trace(classic);
      EXPECT_EQ(strict.records.size(), records.size()) << classic_cell;
    } catch (const std::runtime_error&) {
      // Documented outcome.
    }
  }
}

// The journal blob consumer: a faulted write of the result blob must
// never leave a blob that read_run_result trusts.
TEST_F(ChaosMatrixTest, JournalBlobFaultsReadBackAsUnfinishedNotWrong) {
  const net::AsTopology topo = net::make_reference_topology();
  exp::RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 60;
  spec.seed = 11;
  spec.duration = util::SimTime::seconds(10);
  const exp::RunResult result = exp::run_experiment(topo, spec);

  for (const char* fault :
       {"enospc@64", "fsync-fail", "rename-fail", "bitflip@1200"}) {
    const std::string cell = std::string{"blob x "} + fault;
    const auto path =
        dir_ / (std::string{"r_"} + fault[0] + std::to_string(cell.size()) +
                ".result");
    util::io::install_faults(
        FaultPlan::parse(std::string{fault} + ":" + path.filename().string()));
    bool threw = false;
    try {
      exp::write_run_result(path, result);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    util::io::clear_faults();
    const auto reloaded = exp::read_run_result(path);
    if (threw) {
      // Hard fault: the atomic writer must have left no blob at all
      // (or the previous one — none here).
      EXPECT_FALSE(std::filesystem::exists(path)) << cell;
    }
    // Whatever happened, a reloaded blob is either complete and
    // CRC-clean or rejected; never a half-result.
    if (reloaded.has_value()) {
      EXPECT_EQ(reloaded->counters.chunks_delivered,
                result.counters.chunks_delivered)
          << cell;
    }
    expect_no_temp_litter(cell);
  }
}

// Exhaustive seed sweep: one random flip anywhere in the file — header,
// marker, frame, payload — must always land in a documented outcome.
TEST_F(ChaosMatrixTest, RandomSingleFlipSweepAlwaysReconciles) {
  const auto records = chaos_records(400);
  const auto path = dir_ / "sweep.psct";
  trace::write_trace_binary(path, Ipv4Addr{0x0a000001}, records, 64);
  const std::string clean = slurp(path);

  std::uint64_t lcg = 0x243f6a8885a308d3ull;  // fixed: runs reproduce
  for (int trial = 0; trial < 200; ++trial) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t bit = (lcg >> 11) % (clean.size() * 8);
    std::string buf = clean;
    buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));

    trace::SalvageReport rep;
    const trace::TraceFile got =
        trace::parse_trace_binary_salvage(buf, &rep);
    const std::string cell = "flip bit " + std::to_string(bit);
    EXPECT_EQ(got.records.size(), rep.records_recovered) << cell;
    if (rep.header_valid) {
      EXPECT_EQ(rep.records_recovered + rep.records_skipped,
                records.size())
          << cell;
    } else {
      EXPECT_EQ(rep.records_recovered, 0u) << cell;
      EXPECT_EQ(rep.bytes_discarded, buf.size()) << cell;
    }
  }
}

}  // namespace
}  // namespace peerscope
