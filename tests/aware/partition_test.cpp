#include "aware/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerscope::aware {
namespace {

PairObservation base_obs() {
  PairObservation obs;
  obs.probe_as = net::AsId{2};
  obs.remote_as = net::AsId{210};
  obs.probe_cc = net::kItaly;
  obs.remote_cc = net::kChina;
  return obs;
}

TEST(BwPartition, ThresholdIsOneMillisecond) {
  const Partition bw = bw_partition();
  PairObservation obs = base_obs();
  obs.min_rx_video_ipg_ns = 999'999;
  EXPECT_EQ(bw(obs), std::optional<bool>{true});
  obs.min_rx_video_ipg_ns = 1'000'000;
  EXPECT_EQ(bw(obs), std::optional<bool>{false});
}

TEST(BwPartition, UnevaluableWithoutIpg) {
  const Partition bw = bw_partition();
  const PairObservation obs = base_obs();  // no IPG recorded
  EXPECT_EQ(bw(obs), std::nullopt);
}

TEST(BwPartition, CustomThreshold) {
  const Partition bw = bw_partition(BwConfig{.ipg_threshold_ns = 500'000});
  PairObservation obs = base_obs();
  obs.min_rx_video_ipg_ns = 700'000;
  EXPECT_EQ(bw(obs), std::optional<bool>{false});
}

TEST(AsPartition, MatchesSameAs) {
  const Partition as = as_partition();
  PairObservation obs = base_obs();
  EXPECT_EQ(as(obs), std::optional<bool>{false});
  obs.remote_as = obs.probe_as;
  EXPECT_EQ(as(obs), std::optional<bool>{true});
}

TEST(AsPartition, UnknownAsIsUnevaluable) {
  const Partition as = as_partition();
  PairObservation obs = base_obs();
  obs.remote_as = net::AsId{};
  EXPECT_EQ(as(obs), std::nullopt);
}

TEST(CcPartition, MatchesSameCountry) {
  const Partition cc = cc_partition();
  PairObservation obs = base_obs();
  EXPECT_EQ(cc(obs), std::optional<bool>{false});
  obs.remote_cc = net::kItaly;
  EXPECT_EQ(cc(obs), std::optional<bool>{true});
}

TEST(CcPartition, SameAsImpliesSameCcInPractice) {
  // Structural check of the data model: an observation with equal AS
  // attributes built from one registry entry has equal CC too; the
  // partitions must then nest (AS-preferred subset of CC-preferred).
  PairObservation obs = base_obs();
  obs.remote_as = obs.probe_as;
  obs.remote_cc = obs.probe_cc;
  EXPECT_EQ(as_partition()(obs), std::optional<bool>{true});
  EXPECT_EQ(cc_partition()(obs), std::optional<bool>{true});
}

TEST(NetPartition, SameSubnetFlag) {
  const Partition net = net_partition();
  PairObservation obs = base_obs();
  EXPECT_EQ(net(obs), std::optional<bool>{false});
  obs.same_subnet = true;
  EXPECT_EQ(net(obs), std::optional<bool>{true});
}

TEST(HopPartition, DefaultThresholdIsNineteen) {
  const Partition hop = hop_partition();
  PairObservation obs = base_obs();
  obs.rx_hops = 18;
  EXPECT_EQ(hop(obs), std::optional<bool>{true});
  obs.rx_hops = 19;
  EXPECT_EQ(hop(obs), std::optional<bool>{false});
}

TEST(HopPartition, UnevaluableWithoutRx) {
  const Partition hop = hop_partition();
  PairObservation obs = base_obs();
  obs.rx_hops = -1;
  EXPECT_EQ(hop(obs), std::nullopt);
}

TEST(HopPartition, ZeroHopsIsPreferred) {
  const Partition hop = hop_partition();
  PairObservation obs = base_obs();
  obs.rx_hops = 0;
  EXPECT_EQ(hop(obs), std::optional<bool>{true});
}

TEST(MakePartition, CoversAllMetrics) {
  PairObservation obs = base_obs();
  obs.min_rx_video_ipg_ns = 100;
  obs.rx_hops = 5;
  obs.same_subnet = true;
  obs.remote_as = obs.probe_as;
  obs.remote_cc = obs.probe_cc;
  for (const Metric m : {Metric::kBw, Metric::kAs, Metric::kCc, Metric::kNet,
                         Metric::kHop}) {
    EXPECT_EQ(make_partition(m)(obs), std::optional<bool>{true})
        << to_string(m);
  }
}

TEST(MetricNames, MatchPaper) {
  EXPECT_EQ(to_string(Metric::kBw), "BW");
  EXPECT_EQ(to_string(Metric::kAs), "AS");
  EXPECT_EQ(to_string(Metric::kCc), "CC");
  EXPECT_EQ(to_string(Metric::kNet), "NET");
  EXPECT_EQ(to_string(Metric::kHop), "HOP");
}

TEST(MedianHops, IgnoresUnknowns) {
  std::vector<PairObservation> obs(5, base_obs());
  obs[0].rx_hops = 10;
  obs[1].rx_hops = 20;
  obs[2].rx_hops = 30;
  obs[3].rx_hops = -1;  // no RX
  obs[4].rx_hops = -1;
  EXPECT_DOUBLE_EQ(median_hops(obs), 20.0);
}

TEST(MedianHops, EmptyIsZero) {
  std::vector<PairObservation> obs;
  EXPECT_EQ(median_hops(obs), 0.0);
}

}  // namespace
}  // namespace peerscope::aware
