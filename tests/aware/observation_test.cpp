#include "aware/observation.hpp"

#include <gtest/gtest.h>

#include "sim/packet.hpp"
#include "trace/sink.hpp"

namespace peerscope::aware {
namespace {

using net::Ipv4Addr;
using util::SimTime;

const Ipv4Addr kProbe{20, 0, 0, 10};
const Ipv4Addr kSameSubnet{20, 0, 0, 11};
const Ipv4Addr kSameAs{20, 0, 200, 5};
const Ipv4Addr kForeign{21, 0, 100, 5};

net::NetRegistry make_registry() {
  net::NetRegistry registry;
  registry.announce(*net::Ipv4Prefix::parse("20.0.0.0/16"), net::AsId{2},
                    net::kItaly);
  registry.announce(*net::Ipv4Prefix::parse("21.0.0.0/16"), net::AsId{210},
                    net::kChina);
  return registry;
}

TEST(ExtractObservations, JoinsRegistryAttributes) {
  const auto registry = make_registry();
  trace::ProbeSink sink{kProbe, false};
  sink.signaling_rx(kForeign, SimTime::millis(1), 120, 108);
  sink.signaling_rx(kSameAs, SimTime::millis(2), 120, 121);

  const auto obs =
      extract_observations(sink.flows(), registry, {kProbe, kSameSubnet});
  ASSERT_EQ(obs.size(), 2u);
  for (const auto& o : obs) {
    EXPECT_EQ(o.probe, kProbe);
    EXPECT_EQ(o.probe_as, net::AsId{2});
    EXPECT_EQ(o.probe_cc, net::kItaly);
    if (o.remote == kForeign) {
      EXPECT_EQ(o.remote_as, net::AsId{210});
      EXPECT_EQ(o.remote_cc, net::kChina);
      EXPECT_FALSE(o.same_subnet);
      EXPECT_EQ(o.rx_hops, 128 - 108);
    } else {
      EXPECT_EQ(o.remote_as, net::AsId{2});
      EXPECT_EQ(o.remote_cc, net::kItaly);
      EXPECT_EQ(o.rx_hops, 128 - 121);
    }
    EXPECT_FALSE(o.remote_is_napa);
  }
}

TEST(ExtractObservations, FlagsNapaRemotes) {
  const auto registry = make_registry();
  trace::ProbeSink sink{kProbe, false};
  sink.signaling_rx(kSameSubnet, SimTime::millis(1), 120, 127);
  const auto obs =
      extract_observations(sink.flows(), registry, {kProbe, kSameSubnet});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_TRUE(obs[0].remote_is_napa);
  EXPECT_TRUE(obs[0].same_subnet);
}

TEST(ExtractObservations, HopsUnknownWithoutRx) {
  const auto registry = make_registry();
  trace::ProbeSink sink{kProbe, false};
  sink.signaling_tx(kForeign, SimTime::millis(1), 120);
  const auto obs = extract_observations(sink.flows(), registry, {});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].rx_hops, -1);
}

TEST(ExtractObservations, CarriesVolumeAndIpg) {
  const auto registry = make_registry();
  trace::ProbeSink sink{kProbe, false};
  const std::vector<SimTime> arrivals{SimTime::micros(0), SimTime::micros(500),
                                      SimTime::micros(1100)};
  sink.video_train_rx(kForeign, arrivals, 1250, 109);
  sink.video_train_tx(kForeign, arrivals, 1250);

  const auto obs = extract_observations(sink.flows(), registry, {});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].rx_video_pkts, 3u);
  EXPECT_EQ(obs[0].rx_video_bytes, 3750u);
  EXPECT_EQ(obs[0].tx_video_pkts, 3u);
  ASSERT_TRUE(obs[0].has_min_ipg());
  EXPECT_EQ(obs[0].min_rx_video_ipg_ns, 500'000);
}

TEST(ExtractObservations, UnknownAddressYieldsUnknownAsCc) {
  net::NetRegistry registry;  // empty
  trace::ProbeSink sink{kProbe, false};
  sink.signaling_rx(kForeign, SimTime::millis(1), 120, 100);
  const auto obs = extract_observations(sink.flows(), registry, {});
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_FALSE(obs[0].remote_as.known());
  EXPECT_FALSE(obs[0].remote_cc.known());
}

}  // namespace
}  // namespace peerscope::aware
