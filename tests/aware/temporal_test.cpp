#include "aware/temporal.hpp"

#include <gtest/gtest.h>

#include "sim/packet.hpp"

namespace peerscope::aware {
namespace {

using net::Ipv4Addr;
using trace::Direction;
using trace::PacketRecord;
using util::SimTime;

const Ipv4Addr kA{20, 0, 0, 1};
const Ipv4Addr kB{20, 0, 0, 2};

PacketRecord rec(std::int64_t ms, Ipv4Addr remote, Direction dir,
                 std::int32_t bytes,
                 sim::PacketKind kind = sim::PacketKind::kVideo) {
  return {SimTime::millis(ms), remote, bytes, dir, kind, 110};
}

TEST(TimeSeries, SplitsRatesPerInterval) {
  std::vector<PacketRecord> records{
      rec(100, kA, Direction::kRx, 1250),
      rec(200, kA, Direction::kTx, 1250),
      rec(1100, kB, Direction::kRx, 2500),
  };
  const auto series =
      time_series(records, SimTime::seconds(2), SimTime::seconds(1));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].rx_kbps, 1250 * 8.0 / 1e3);
  EXPECT_DOUBLE_EQ(series[0].tx_kbps, 1250 * 8.0 / 1e3);
  EXPECT_DOUBLE_EQ(series[1].rx_kbps, 2500 * 8.0 / 1e3);
  EXPECT_EQ(series[0].active_peers, 1u);
  EXPECT_EQ(series[1].active_peers, 1u);
}

TEST(TimeSeries, CountsNewPeersOnce) {
  std::vector<PacketRecord> records{
      rec(100, kA, Direction::kRx, 100),
      rec(1100, kA, Direction::kRx, 100),
      rec(1200, kB, Direction::kRx, 100),
  };
  const auto series =
      time_series(records, SimTime::seconds(2), SimTime::seconds(1));
  EXPECT_EQ(series[0].new_peers, 1u);
  EXPECT_EQ(series[1].new_peers, 1u);  // only B is new
  EXPECT_EQ(series[1].active_peers, 2u);
}

TEST(TimeSeries, ContributorCrossingAttributedToInterval) {
  std::vector<PacketRecord> records;
  // 12 video packets in interval 0, the 13th (threshold) in interval 1.
  for (int i = 0; i < 12; ++i) {
    records.push_back(rec(10 + i, kA, Direction::kRx, 1250));
  }
  records.push_back(rec(1500, kA, Direction::kRx, 1250));
  const auto series =
      time_series(records, SimTime::seconds(2), SimTime::seconds(1));
  EXPECT_EQ(series[0].new_rx_contributors, 0u);
  EXPECT_EQ(series[1].new_rx_contributors, 1u);
}

TEST(TimeSeries, IgnoresRecordsPastDuration) {
  std::vector<PacketRecord> records{
      rec(500, kA, Direction::kRx, 100),
      rec(5000, kA, Direction::kRx, 100),  // beyond horizon
  };
  const auto series =
      time_series(records, SimTime::seconds(1), SimTime::seconds(1));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].active_peers, 1u);
}

TEST(TimeSeries, RejectsBadIntervals) {
  std::vector<PacketRecord> records;
  EXPECT_THROW((void)time_series(records, SimTime::seconds(1),
                                 SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW((void)time_series(records, SimTime::zero(),
                                 SimTime::seconds(1)),
               std::invalid_argument);
}

TEST(TimeSeries, UnsortedInputHandled) {
  std::vector<PacketRecord> records{
      rec(1100, kB, Direction::kRx, 2500),
      rec(100, kA, Direction::kRx, 1250),
  };
  const auto series =
      time_series(records, SimTime::seconds(2), SimTime::seconds(1));
  EXPECT_EQ(series[0].new_peers, 1u);
  EXPECT_EQ(series[1].new_peers, 1u);
}

TEST(SessionStability, SpansPerPeer) {
  std::vector<PacketRecord> records{
      rec(0, kA, Direction::kRx, 100),
      rec(10'000, kA, Direction::kRx, 100),   // A: 10 s span
      rec(2'000, kB, Direction::kTx, 100),
      rec(4'000, kB, Direction::kRx, 100),    // B: 2 s span
  };
  const auto stats = session_stability(records);
  EXPECT_EQ(stats.peers, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_session_s, 6.0);
  EXPECT_DOUBLE_EQ(stats.median_session_s, 6.0);
}

TEST(SessionStability, EmptyInput) {
  const auto stats = session_stability({});
  EXPECT_EQ(stats.peers, 0u);
  EXPECT_EQ(stats.mean_session_s, 0.0);
}

TEST(SessionStability, SinglePacketPeerHasZeroSpan) {
  std::vector<PacketRecord> records{rec(100, kA, Direction::kRx, 100)};
  const auto stats = session_stability(records);
  EXPECT_EQ(stats.peers, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_session_s, 0.0);
}

}  // namespace
}  // namespace peerscope::aware
