#include "aware/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

namespace peerscope::aware {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_export_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::string> lines(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

  std::filesystem::path dir_;
};

TEST_F(ExportTest, AwarenessCsvLayout) {
  std::vector<AwarenessRow> rows(1);
  rows[0].metric = Metric::kAs;
  rows[0].download.b_pct = 12.5;
  rows[0].download.p_pct = 3.0;
  rows[0].download.b_prime_pct = 6.5;
  rows[0].download.p_prime_pct = 0.5;
  // upload left unmeasured -> empty cells.
  const auto path = dir_ / "aw.csv";
  write_awareness_csv(path, "TVAnts", rows);
  const auto content = lines(path);
  ASSERT_EQ(content.size(), 3u);
  EXPECT_EQ(content[0],
            "app,metric,direction,b_prime_pct,p_prime_pct,b_pct,p_pct");
  EXPECT_EQ(content[1].substr(0, 20), "TVAnts,AS,download,6");
  EXPECT_EQ(content[2], "TVAnts,AS,upload,,,,");
}

TEST_F(ExportTest, SummaryCsvRoundValues) {
  ExperimentSummary s;
  s.rx_kbps_mean = 420.5;
  s.observed_total = 567;
  const auto path = dir_ / "sum.csv";
  write_summary_csv(path, "TVAnts", s);
  const auto content = lines(path);
  ASSERT_EQ(content.size(), 2u);
  EXPECT_NE(content[1].find("TVAnts,420.5"), std::string::npos);
  EXPECT_NE(content[1].find(",567"), std::string::npos);
}

TEST_F(ExportTest, GeoCsvStarBucket) {
  std::vector<GeoShare> shares{
      {net::kChina, 70.0, 50.0, 60.0},
      {net::CountryCode{}, 30.0, 50.0, 40.0},
  };
  const auto path = dir_ / "geo.csv";
  write_geo_csv(path, "PPLive", shares);
  const auto content = lines(path);
  ASSERT_EQ(content.size(), 3u);
  EXPECT_EQ(content[1].substr(0, 10), "PPLive,CN,");
  EXPECT_EQ(content[2].substr(0, 9), "PPLive,*,");
}

TEST_F(ExportTest, MatrixCsvLongForm) {
  AsMatrix matrix;
  matrix.ases = {net::AsId{1}, net::AsId{2}};
  matrix.mean_bytes = {10, 2, 3, 20};
  const auto path = dir_ / "matrix.csv";
  write_matrix_csv(path, "TVAnts", matrix);
  const auto content = lines(path);
  ASSERT_EQ(content.size(), 5u);  // header + 4 cells
  EXPECT_NE(content[1].find("TVAnts,1,1,10,1"), std::string::npos);
  EXPECT_NE(content[2].find("TVAnts,1,2,2,0"), std::string::npos);
}

TEST_F(ExportTest, TimeseriesCsv) {
  std::vector<IntervalStats> series(2);
  series[0].start = util::SimTime::seconds(0);
  series[0].rx_kbps = 400;
  series[1].start = util::SimTime::seconds(10);
  series[1].active_peers = 7;
  const auto path = dir_ / "ts.csv";
  write_timeseries_csv(path, series);
  const auto content = lines(path);
  ASSERT_EQ(content.size(), 3u);
  EXPECT_EQ(content[1].substr(0, 6), "0,400,");
  EXPECT_NE(content[2].find(",7,"), std::string::npos);
}

TEST_F(ExportTest, UnwritablePathThrows) {
  std::vector<AwarenessRow> rows(1);
  EXPECT_THROW(
      write_awareness_csv(dir_ / "no_such_dir" / "x.csv", "A", rows),
      std::runtime_error);
}

}  // namespace
}  // namespace peerscope::aware
