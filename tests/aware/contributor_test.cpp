#include "aware/contributor.hpp"

#include <gtest/gtest.h>

namespace peerscope::aware {
namespace {

PairObservation with_video(std::uint64_t rx_pkts, std::uint64_t tx_pkts) {
  PairObservation obs;
  obs.rx_video_pkts = rx_pkts;
  obs.tx_video_pkts = tx_pkts;
  return obs;
}

TEST(Contributor, DefaultThresholdIsOneChunk) {
  const ContributorConfig cfg;
  EXPECT_EQ(cfg.min_video_packets, 13u);
}

TEST(Contributor, RxContributor) {
  const ContributorConfig cfg;
  EXPECT_FALSE(is_rx_contributor(with_video(0, 0), cfg));
  EXPECT_FALSE(is_rx_contributor(with_video(12, 0), cfg));
  EXPECT_TRUE(is_rx_contributor(with_video(13, 0), cfg));
  EXPECT_TRUE(is_rx_contributor(with_video(1000, 0), cfg));
}

TEST(Contributor, TxContributor) {
  const ContributorConfig cfg;
  EXPECT_FALSE(is_tx_contributor(with_video(0, 12), cfg));
  EXPECT_TRUE(is_tx_contributor(with_video(0, 13), cfg));
}

TEST(Contributor, UnionContributor) {
  const ContributorConfig cfg;
  EXPECT_TRUE(is_contributor(with_video(13, 0), cfg));
  EXPECT_TRUE(is_contributor(with_video(0, 13), cfg));
  EXPECT_TRUE(is_contributor(with_video(13, 13), cfg));
  EXPECT_FALSE(is_contributor(with_video(12, 12), cfg));
}

TEST(Contributor, SignalingOnlyPeerIsNotContributor) {
  const ContributorConfig cfg;
  PairObservation obs;
  obs.rx_pkts = 500;       // lots of signaling traffic
  obs.rx_bytes = 60'000;
  obs.rx_video_pkts = 0;   // but no video
  EXPECT_FALSE(is_contributor(obs, cfg));
}

TEST(Contributor, CustomThreshold) {
  const ContributorConfig cfg{.min_video_packets = 1};
  EXPECT_TRUE(is_rx_contributor(with_video(1, 0), cfg));
  EXPECT_FALSE(is_rx_contributor(with_video(0, 0), cfg));
}

}  // namespace
}  // namespace peerscope::aware
