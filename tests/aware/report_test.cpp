#include "aware/report.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerscope::aware {
namespace {

using net::Ipv4Addr;

constexpr std::uint64_t kChunk = 16'250;

PairObservation make_obs(Ipv4Addr probe, Ipv4Addr remote,
                         std::uint64_t rx_video, std::uint64_t tx_video,
                         bool napa = false) {
  PairObservation obs;
  obs.probe = probe;
  obs.remote = remote;
  obs.probe_as = net::AsId{2};
  obs.probe_cc = net::kItaly;
  // Probe remotes live in the probe's own AS/country (they are the
  // Table I machines); background remotes are Chinese.
  obs.remote_as = napa ? net::AsId{2} : net::AsId{210};
  obs.remote_cc = napa ? net::kItaly : net::kChina;
  obs.rx_video_pkts = rx_video / 1250;
  obs.rx_video_bytes = rx_video;
  obs.rx_bytes = rx_video;
  obs.rx_pkts = obs.rx_video_pkts;
  obs.tx_video_pkts = tx_video / 1250;
  obs.tx_video_bytes = tx_video;
  obs.tx_bytes = tx_video;
  obs.tx_pkts = obs.tx_video_pkts;
  obs.remote_is_napa = napa;
  if (rx_video > 0) obs.rx_hops = 20;
  return obs;
}

ExperimentObservations two_probe_experiment() {
  const Ipv4Addr p1{20, 0, 0, 1};
  const Ipv4Addr p2{20, 0, 0, 2};
  ExperimentObservations data;
  data.app = "Test";
  data.duration = util::SimTime::seconds(100);
  data.probes = {{p1, net::AsId{2}, net::kItaly, true, "P1"},
                 {p2, net::AsId{2}, net::kItaly, true, "P2"}};
  // Probe 1: two remotes plus the other probe.
  data.per_probe.push_back({
      make_obs(p1, Ipv4Addr{21, 0, 0, 1}, 4 * kChunk, 0),
      make_obs(p1, Ipv4Addr{21, 0, 0, 2}, 0, 2 * kChunk),
      make_obs(p1, p2, 2 * kChunk, 2 * kChunk, /*napa=*/true),
  });
  // Probe 2: one shared remote and the other probe.
  data.per_probe.push_back({
      make_obs(p2, Ipv4Addr{21, 0, 0, 1}, 2 * kChunk, 0),
      make_obs(p2, p1, 2 * kChunk, 2 * kChunk, /*napa=*/true),
  });
  return data;
}

TEST(Summarize, RatesAndCounts) {
  const auto data = two_probe_experiment();
  const ExperimentSummary s = summarize(data);
  // Probe 1 RX bytes: 4+2 chunks; probe 2: 2+2 chunks.
  const double p1_kbps = 6.0 * kChunk * 8.0 / 100.0 / 1e3;
  const double p2_kbps = 4.0 * kChunk * 8.0 / 100.0 / 1e3;
  EXPECT_NEAR(s.rx_kbps_mean, (p1_kbps + p2_kbps) / 2, 1e-9);
  EXPECT_NEAR(s.rx_kbps_max, p1_kbps, 1e-9);
  EXPECT_DOUBLE_EQ(s.all_peers_mean, 2.5);
  EXPECT_EQ(s.all_peers_max, 3u);
  EXPECT_DOUBLE_EQ(s.contrib_rx_mean, 2.0);
  EXPECT_EQ(s.contrib_rx_max, 2u);
  EXPECT_DOUBLE_EQ(s.contrib_tx_mean, 1.5);
  // Union of remotes: 21.0.0.1, 21.0.0.2, p1, p2.
  EXPECT_EQ(s.observed_total, 4u);
}

TEST(Summarize, EmptyExperiment) {
  ExperimentObservations data;
  const ExperimentSummary s = summarize(data);
  EXPECT_EQ(s.observed_total, 0u);
  EXPECT_EQ(s.rx_kbps_mean, 0.0);
}

TEST(SelfBias, CountsNapaShare) {
  const auto data = two_probe_experiment();
  const SelfBias bias = self_bias(data);
  // Contributors: p1 sees 3 (1 napa), p2 sees 2 (1 napa) -> 2/5.
  EXPECT_DOUBLE_EQ(bias.contributors_peer_pct, 40.0);
  // Bytes (rx+tx): napa flows carry (2+2)+(2+2) = 8 chunks of
  // (4)+(2)+(4)+(2)+(4) = 16 total.
  EXPECT_NEAR(bias.contributors_bytes_pct, 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(bias.all_peers_peer_pct, 40.0);
}

TEST(AwarenessTable, HasFiveMetricRows) {
  const auto data = two_probe_experiment();
  const auto rows = awareness_table(data);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].metric, Metric::kBw);
  EXPECT_EQ(rows[1].metric, Metric::kAs);
  EXPECT_EQ(rows[2].metric, Metric::kCc);
  EXPECT_EQ(rows[3].metric, Metric::kNet);
  EXPECT_EQ(rows[4].metric, Metric::kHop);
}

TEST(AwarenessTable, BwUploadIsUndefined) {
  const auto data = two_probe_experiment();
  const auto rows = awareness_table(data);
  EXPECT_FALSE(rows[0].upload.b_pct.has_value());
  EXPECT_FALSE(rows[0].upload.p_pct.has_value());
}

TEST(AwarenessTable, AsRowReflectsSyntheticData) {
  const auto data = two_probe_experiment();
  const auto rows = awareness_table(data);
  // All non-napa remotes are foreign-AS; only the napa probes share
  // the AS. Non-NAPA: 0% preferred.
  ASSERT_TRUE(rows[1].download.p_prime_pct.has_value());
  EXPECT_DOUBLE_EQ(*rows[1].download.p_prime_pct, 0.0);
  // All-contributors download: p1 has {A: 4ch, napa 2ch}, p2 has
  // {A: 2ch, napa 2ch}: peers 2/4 same-AS, bytes 4/10.
  ASSERT_TRUE(rows[1].download.p_pct.has_value());
  EXPECT_DOUBLE_EQ(*rows[1].download.p_pct, 50.0);
  EXPECT_DOUBLE_EQ(*rows[1].download.b_pct, 40.0);
}

TEST(AwarenessTable, HopRowUsesFixedThreshold) {
  auto data = two_probe_experiment();
  // All synthetic hops are 20 >= 19 -> nothing preferred.
  const auto rows = awareness_table(data);
  ASSERT_TRUE(rows[4].download.p_pct.has_value());
  EXPECT_DOUBLE_EQ(*rows[4].download.p_pct, 0.0);
  // Lower the threshold config above the synthetic value.
  AwarenessConfig cfg;
  cfg.hop.threshold_hops = 25;
  const auto rows2 = awareness_table(data, cfg);
  EXPECT_DOUBLE_EQ(*rows2[4].download.p_pct, 100.0);
}

TEST(GeoBreakdown, SharesSumToHundred) {
  const auto data = two_probe_experiment();
  const auto shares = geo_breakdown(data);
  ASSERT_EQ(shares.size(), 6u);  // CN HU IT FR PL *
  double peer_total = 0, rx_total = 0, tx_total = 0;
  for (const auto& s : shares) {
    peer_total += s.peer_pct;
    rx_total += s.rx_bytes_pct;
    tx_total += s.tx_bytes_pct;
  }
  EXPECT_NEAR(peer_total, 100.0, 1e-9);
  EXPECT_NEAR(rx_total, 100.0, 1e-9);
  EXPECT_NEAR(tx_total, 100.0, 1e-9);
}

TEST(GeoBreakdown, BucketsByCountry) {
  const auto data = two_probe_experiment();
  const auto shares = geo_breakdown(data);
  // Order: CN, HU, IT, FR, PL, *.
  EXPECT_EQ(shares[0].cc, net::kChina);
  EXPECT_EQ(shares[2].cc, net::kItaly);
  // 3 CN remotes of 5 observations; 2 IT (napa) observations.
  EXPECT_DOUBLE_EQ(shares[0].peer_pct, 60.0);
  EXPECT_DOUBLE_EQ(shares[2].peer_pct, 40.0);
  EXPECT_DOUBLE_EQ(shares[1].peer_pct, 0.0);
  EXPECT_FALSE(shares[5].cc.known());
}

TEST(AsMatrix, IntraAsTrafficAndRatio) {
  const Ipv4Addr p1{20, 0, 0, 1};
  const Ipv4Addr p2{20, 0, 1, 2};  // same AS, different subnet
  const Ipv4Addr p3{21, 0, 0, 1};
  ExperimentObservations data;
  data.app = "Test";
  data.probes = {{p1, net::AsId{2}, net::kItaly, true, "P1"},
                 {p2, net::AsId{2}, net::kItaly, true, "P2"},
                 {p3, net::AsId{4}, net::kFrance, true, "P3"}};
  // p1 uploads 10 chunks to p2 (intra-AS) and 2 to p3 (inter).
  data.per_probe.push_back({
      make_obs(p1, p2, 0, 10 * kChunk, true),
      make_obs(p1, p3, 0, 2 * kChunk, true),
  });
  data.per_probe.push_back({});
  data.per_probe.push_back({});

  const AsMatrix matrix = as_traffic_matrix(data);
  ASSERT_EQ(matrix.ases.size(), 2u);
  EXPECT_EQ(matrix.ases[0], net::AsId{2});
  EXPECT_EQ(matrix.ases[1], net::AsId{4});
  // Intra-AS2: 10 chunks over 2 ordered pairs -> 5 chunks mean.
  EXPECT_DOUBLE_EQ(matrix.at(0, 0), 5.0 * kChunk);
  // AS2 -> AS4: 2 chunks over 2 ordered pairs -> 1 chunk mean.
  EXPECT_DOUBLE_EQ(matrix.at(0, 1), 1.0 * kChunk);
  EXPECT_DOUBLE_EQ(matrix.at(1, 0), 0.0);
  // R = intra mean / inter mean = (10/2) / (2/4); no same-subnet pairs
  // here, so both ratio variants agree.
  EXPECT_DOUBLE_EQ(matrix.intra_inter_ratio, 10.0);
  EXPECT_DOUBLE_EQ(matrix.intra_inter_ratio_with_lan, 10.0);
}

TEST(AsMatrix, SameSubnetPairsExcludedFromR) {
  const Ipv4Addr p1{20, 0, 0, 1};
  const Ipv4Addr lan_mate{20, 0, 0, 2};  // same /24
  const Ipv4Addr p2{20, 0, 1, 2};        // same AS, other subnet
  const Ipv4Addr p3{21, 0, 0, 1};        // other AS
  ExperimentObservations data;
  data.probes = {{p1, net::AsId{2}, net::kItaly, true, "P1"},
                 {lan_mate, net::AsId{2}, net::kItaly, true, "P1b"},
                 {p2, net::AsId{2}, net::kItaly, true, "P2"},
                 {p3, net::AsId{4}, net::kFrance, true, "P3"}};
  // Heavy LAN exchange plus a little inter-AS traffic.
  auto lan_obs = make_obs(p1, lan_mate, 0, 100 * kChunk, true);
  lan_obs.same_subnet = true;
  data.per_probe.push_back({
      lan_obs,
      make_obs(p1, p3, 0, 2 * kChunk, true),
  });
  data.per_probe.push_back({});
  data.per_probe.push_back({});
  data.per_probe.push_back({});

  const AsMatrix matrix = as_traffic_matrix(data);
  // Including LAN pairs, intra-AS dominates by far...
  EXPECT_GT(matrix.intra_inter_ratio_with_lan, 10.0);
  // ...but the paper's R (same-subnet excluded) sees no intra bias.
  EXPECT_EQ(matrix.intra_inter_ratio, 0.0);
}

TEST(AsMatrix, ExcludesLowBandwidthProbes) {
  const Ipv4Addr p1{20, 0, 0, 1};
  const Ipv4Addr dsl{22, 0, 0, 1};
  ExperimentObservations data;
  data.probes = {{p1, net::AsId{2}, net::kItaly, true, "P1"},
                 {dsl, net::AsId{11}, net::kItaly, false, "Home"}};
  data.per_probe.push_back({make_obs(p1, dsl, 0, 5 * kChunk, true)});
  data.per_probe.push_back({});
  const AsMatrix matrix = as_traffic_matrix(data);
  ASSERT_EQ(matrix.ases.size(), 1u);
  EXPECT_EQ(matrix.at(0, 0), 0.0);  // no second high-bw probe in AS2
}

}  // namespace
}  // namespace peerscope::aware
