// Loss-robust estimator tests: capture duplication and reordering
// fabricate near-zero inter-packet gaps and flipped TTL bytes; the
// quantile-based min-IPG and the Misra–Gries TTL mode must shrug both
// off while staying exactly equal to the plain estimators on clean
// input.
#include <gtest/gtest.h>

#include <limits>

#include "aware/bandwidth.hpp"
#include "aware/observation.hpp"
#include "trace/flow.hpp"

namespace peerscope::aware {
namespace {

using net::Ipv4Addr;
using trace::Direction;
using trace::FlowTable;
using trace::PacketRecord;
using util::SimTime;

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

PacketRecord rx_video(std::int64_t ts_us, Ipv4Addr remote,
                      std::uint8_t ttl = 110) {
  PacketRecord r;
  r.ts = SimTime::micros(ts_us);
  r.remote = remote;
  r.bytes = 1250;
  r.dir = Direction::kRx;
  r.kind = sim::PacketKind::kVideo;
  r.ttl = ttl;
  return r;
}

TEST(RobustMinIpg, DiscardSkipsFabricatedGaps) {
  const std::int64_t smallest[] = {3, 8, 1000000, kMax, kMax};
  // Two duplication artifacts (3 ns, 8 ns) ahead of the real 1 ms gap.
  EXPECT_EQ(trace::robust_min_ipg(smallest, 10, 2), 1000000);
  EXPECT_EQ(trace::robust_min_ipg(smallest, 10, 0), 3);
  EXPECT_EQ(trace::robust_min_ipg(smallest, 10, -5), 3);
}

TEST(RobustMinIpg, NeverDiscardsEverySample) {
  const std::int64_t smallest[] = {40, 50, kMax, kMax, kMax};
  // Only two samples exist; discarding "3" falls back to the largest.
  EXPECT_EQ(trace::robust_min_ipg(smallest, 2, 3), 50);
}

TEST(RobustMinIpg, NoSamplesIsUnmeasurable) {
  const std::int64_t smallest[] = {kMax, kMax, kMax, kMax, kMax};
  EXPECT_EQ(trace::robust_min_ipg(smallest, 0, 2), kMax);
}

TEST(RobustFlow, CleanFlowMatchesPlainMinimum) {
  const Ipv4Addr remote{20, 0, 0, 9};
  std::vector<PacketRecord> records;
  for (int i = 0; i < 20; ++i) records.push_back(rx_video(i * 1000, remote));
  const auto table = FlowTable::from_records(Ipv4Addr{10, 0, 0, 1}, records);
  const auto* flow = table.find(remote);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->min_rx_video_ipg_ns, 1000000);
  EXPECT_EQ(flow->min_ipg_after_discard(0), flow->min_rx_video_ipg_ns);
  // All real gaps are identical, so discarding still lands on 1 ms.
  EXPECT_EQ(flow->min_ipg_after_discard(2), 1000000);
  EXPECT_EQ(flow->rx_ipg_samples, 19u);
}

TEST(RobustFlow, DuplicationArtifactsAreDiscarded) {
  const Ipv4Addr remote{20, 0, 0, 9};
  std::vector<PacketRecord> records;
  for (int i = 0; i < 20; ++i) records.push_back(rx_video(i * 1000, remote));
  // Two capture duplicates, 5 us after the original.
  records.push_back(rx_video(4 * 1000 + 5, remote));
  records.push_back(rx_video(9 * 1000 + 5, remote));
  const auto table = FlowTable::from_records(Ipv4Addr{10, 0, 0, 1}, records);
  const auto* flow = table.find(remote);
  ASSERT_NE(flow, nullptr);
  // The plain minimum is poisoned; the robust one recovers ~1 ms.
  EXPECT_EQ(flow->min_rx_video_ipg_ns, 5000);
  EXPECT_EQ(flow->min_ipg_after_discard(2), 995000);
}

TEST(RobustFlow, TtlModeIgnoresCorruptedBytes) {
  const Ipv4Addr remote{20, 0, 0, 9};
  std::vector<PacketRecord> records;
  for (int i = 0; i < 30; ++i) records.push_back(rx_video(i * 1000, remote));
  // Three flipped TTL bytes, one of them on the very last packet — the
  // last-seen estimator inherits it, the mode does not.
  records[7].ttl = 55;
  records[19].ttl = 201;
  records[29].ttl = 17;
  const auto table = FlowTable::from_records(Ipv4Addr{10, 0, 0, 1}, records);
  const auto* flow = table.find(remote);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->rx_ttl, 17);  // last-seen is poisoned
  EXPECT_EQ(flow->rx_ttl_mode(), 110);
}

TEST(RobustFlow, TtlModeEqualsLastSeenOnCleanFlow) {
  const Ipv4Addr remote{20, 0, 0, 9};
  std::vector<PacketRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(rx_video(i * 1000, remote, 121));
  }
  const auto table = FlowTable::from_records(Ipv4Addr{10, 0, 0, 1}, records);
  const auto* flow = table.find(remote);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->rx_ttl_mode(), flow->rx_ttl);
}

TEST(RobustObservation, HandBuiltObservationFallsBackToPlainMin) {
  // Analyses that construct PairObservation directly (older tests,
  // external joins) never fill the k-smallest array; the robust
  // accessor must degrade to the plain minimum, not int64 max.
  PairObservation obs;
  obs.min_rx_video_ipg_ns = 250000;
  EXPECT_EQ(obs.min_ipg_after_discard(2), 250000);
  EXPECT_EQ(obs.min_ipg_after_discard(0), 250000);
}

TEST(RobustObservation, CapacityEstimateUsesDiscard) {
  PairObservation obs;
  obs.min_rx_video_ipg_ns = 10;  // fabricated duplicate gap: 1000 Gb/s
  obs.smallest_rx_ipgs = {10, 1000000, 1000000, 1000000, 1000000};
  obs.rx_ipg_samples = 50;

  const auto naive = estimate_capacity(obs, 1250, 0);
  const auto robust = estimate_capacity(obs, 1250, 1);
  ASSERT_TRUE(naive.has_value());
  ASSERT_TRUE(robust.has_value());
  EXPECT_GT(naive->mbps, 100000.0);     // absurd
  EXPECT_NEAR(robust->mbps, 10.0, 0.1);  // 1250 B / 1 ms = 10 Mb/s
  EXPECT_EQ(robust->min_ipg_ns, 1000000);
}

}  // namespace
}  // namespace peerscope::aware
