#include "aware/preference.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerscope::aware {
namespace {

// Builds a contributor observation: video volume in both directions,
// with same-AS membership controlling the partition outcome.
PairObservation contributor(bool same_as, std::uint64_t rx_bytes,
                            std::uint64_t tx_bytes, bool napa = false) {
  PairObservation obs;
  obs.probe_as = net::AsId{2};
  obs.remote_as = same_as ? net::AsId{2} : net::AsId{210};
  obs.probe_cc = net::kItaly;
  obs.remote_cc = same_as ? net::kItaly : net::kChina;
  obs.rx_video_pkts = rx_bytes / 1250;
  obs.rx_video_bytes = rx_bytes;
  obs.tx_video_pkts = tx_bytes / 1250;
  obs.tx_video_bytes = tx_bytes;
  obs.remote_is_napa = napa;
  return obs;
}

constexpr std::uint64_t kChunk = 16'250;  // 13 packets -> contributor

TEST(Preference, HandComputedEquations) {
  // Three download contributors: two same-AS (prefer) with 2 and 1
  // chunks, one foreign with 5 chunks.
  std::vector<PairObservation> obs{
      contributor(true, 2 * kChunk, 0),
      contributor(true, 1 * kChunk, 0),
      contributor(false, 5 * kChunk, 0),
  };
  PreferenceOptions opt;
  opt.dir = Dir::kDownload;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_pref, 2u);       // Eq. 1
  EXPECT_EQ(counts.peers_nonpref, 1u);    // Eq. 3
  EXPECT_EQ(counts.bytes_pref, 3 * kChunk);     // Eq. 2
  EXPECT_EQ(counts.bytes_nonpref, 5 * kChunk);  // Eq. 4
  EXPECT_DOUBLE_EQ(counts.peer_pct(), 100.0 * 2 / 3);   // Eq. 7
  EXPECT_DOUBLE_EQ(counts.byte_pct(), 100.0 * 3 / 8);   // Eq. 8
}

TEST(Preference, NonContributorsAreExcluded) {
  std::vector<PairObservation> obs{
      contributor(true, 2 * kChunk, 0),
      contributor(true, 500, 0),  // below the contributor threshold
  };
  PreferenceOptions opt;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_pref, 1u);
  EXPECT_EQ(counts.bytes_pref, 2 * kChunk);
}

TEST(Preference, UploadDirectionUsesTxSets) {
  std::vector<PairObservation> obs{
      contributor(true, 0, 3 * kChunk),
      contributor(false, 4 * kChunk, 0),  // download-only contributor
  };
  PreferenceOptions opt;
  opt.dir = Dir::kUpload;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_pref, 1u);
  EXPECT_EQ(counts.peers_nonpref, 0u);
  EXPECT_EQ(counts.bytes_pref, 3 * kChunk);
  EXPECT_DOUBLE_EQ(counts.peer_pct(), 100.0);
}

TEST(Preference, ExcludeNapaDropsProbePeers) {
  std::vector<PairObservation> obs{
      contributor(true, 10 * kChunk, 0, /*napa=*/true),
      contributor(true, 1 * kChunk, 0),
      contributor(false, 1 * kChunk, 0),
  };
  PreferenceOptions opt;
  opt.exclude_napa = true;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_pref, 1u);
  EXPECT_EQ(counts.bytes_pref, 1 * kChunk);
  EXPECT_DOUBLE_EQ(counts.peer_pct(), 50.0);

  opt.exclude_napa = false;
  const PreferenceCounts all = evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(all.peers_pref, 2u);
  EXPECT_EQ(all.bytes_pref, 11 * kChunk);
}

TEST(Preference, UnevaluablePeersCountedSeparately) {
  std::vector<PairObservation> obs{
      contributor(true, 2 * kChunk, 0),
  };
  obs.push_back(contributor(false, 2 * kChunk, 0));
  obs.back().remote_as = net::AsId{};  // unknown AS -> unevaluable
  PreferenceOptions opt;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_pref, 1u);
  EXPECT_EQ(counts.peers_nonpref, 0u);
  EXPECT_EQ(counts.peers_unevaluable, 1u);
}

TEST(Preference, MergeAggregatesAcrossProbes) {
  // Eq. 5-6: totals over the probe set are plain sums.
  std::vector<PairObservation> probe1{contributor(true, kChunk, 0)};
  std::vector<PairObservation> probe2{contributor(false, 3 * kChunk, 0)};
  PreferenceOptions opt;
  PreferenceCounts total = evaluate_preference(probe1, as_partition(), opt);
  total.merge(evaluate_preference(probe2, as_partition(), opt));
  EXPECT_EQ(total.peers_total(), 2u);
  EXPECT_DOUBLE_EQ(total.peer_pct(), 50.0);
  EXPECT_DOUBLE_EQ(total.byte_pct(), 25.0);
}

TEST(Preference, EmptySetYieldsZeroPercent) {
  std::vector<PairObservation> obs;
  PreferenceOptions opt;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_EQ(counts.peers_total(), 0u);
  EXPECT_EQ(counts.peer_pct(), 0.0);
  EXPECT_EQ(counts.byte_pct(), 0.0);
}

TEST(Preference, BytePreferenceCanExceedPeerPreference) {
  // The paper's central observable: few preferred peers carrying a
  // disproportionate share of bytes (B >> P).
  std::vector<PairObservation> obs{
      contributor(true, 20 * kChunk, 0),
      contributor(false, 1 * kChunk, 0),
      contributor(false, 1 * kChunk, 0),
      contributor(false, 1 * kChunk, 0),
  };
  PreferenceOptions opt;
  const PreferenceCounts counts =
      evaluate_preference(obs, as_partition(), opt);
  EXPECT_DOUBLE_EQ(counts.peer_pct(), 25.0);
  EXPECT_NEAR(counts.byte_pct(), 100.0 * 20 / 23, 1e-9);
  EXPECT_GT(counts.byte_pct(), counts.peer_pct());
}

}  // namespace
}  // namespace peerscope::aware
