#include "aware/bandwidth.hpp"

#include <gtest/gtest.h>

namespace peerscope::aware {
namespace {

constexpr std::uint64_t kChunk = 16'250;

PairObservation contributor_with_ipg(std::int64_t ipg_ns,
                                     std::uint64_t chunks = 1,
                                     bool napa = false) {
  PairObservation obs;
  obs.rx_video_pkts = 13 * chunks;
  obs.rx_video_bytes = kChunk * chunks;
  obs.min_rx_video_ipg_ns = ipg_ns;
  obs.remote_is_napa = napa;
  return obs;
}

TEST(CapacityEstimate, InvertsSerialisationTime) {
  // 1250 B in 1 ms -> 10 Mb/s exactly.
  const auto estimate = estimate_capacity(contributor_with_ipg(1'000'000));
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(estimate->mbps, 10.0);
  // 100 us -> 100 Mb/s.
  EXPECT_DOUBLE_EQ(estimate_capacity(contributor_with_ipg(100'000))->mbps,
                   100.0);
  // 26.04 ms (384 kb/s uplink) -> ~0.384 Mb/s.
  EXPECT_NEAR(estimate_capacity(contributor_with_ipg(26'041'667))->mbps,
              0.384, 0.001);
}

TEST(CapacityEstimate, UnevaluableWithoutPairs) {
  PairObservation obs;  // no IPG
  EXPECT_FALSE(estimate_capacity(obs).has_value());
}

ExperimentObservations small_experiment() {
  ExperimentObservations data;
  data.probes.push_back(
      {net::Ipv4Addr{10, 0, 0, 1}, net::AsId{2}, net::kItaly, true, "P"});
  data.per_probe.push_back({
      contributor_with_ipg(100'000, 10),     // 100 Mb/s, heavy
      contributor_with_ipg(500'000, 4),      // 20 Mb/s
      contributor_with_ipg(26'000'000, 1),   // DSL
      contributor_with_ipg(50'000, 50, true),  // napa peer: excluded
  });
  return data;
}

TEST(ThresholdSweep, MonotoneInThreshold) {
  const auto data = small_experiment();
  const std::int64_t thresholds[] = {50'000, 1'000'000, 100'000'000};
  const auto sweep = bw_threshold_sweep(data, thresholds);
  ASSERT_EQ(sweep.size(), 3u);
  // Raising the threshold can only move peers into the preferred set.
  EXPECT_LE(sweep[0].peer_pct, sweep[1].peer_pct);
  EXPECT_LE(sweep[1].peer_pct, sweep[2].peer_pct);
  // At 50 us nothing qualifies; at 100 ms everything does.
  EXPECT_DOUBLE_EQ(sweep[0].peer_pct, 0.0);
  EXPECT_DOUBLE_EQ(sweep[2].peer_pct, 100.0);
}

TEST(ThresholdSweep, PaperThresholdSplitsClasses) {
  const auto data = small_experiment();
  const std::int64_t thresholds[] = {1'000'000};
  const auto sweep = bw_threshold_sweep(data, thresholds);
  // Two of three non-napa contributors are high-bandwidth.
  EXPECT_NEAR(sweep[0].peer_pct, 100.0 * 2 / 3, 1e-9);
  EXPECT_NEAR(sweep[0].byte_pct, 100.0 * 14 / 15, 1e-9);
}

TEST(CapacityDistribution, ExcludesNapaAndBinsCorrectly) {
  const auto data = small_experiment();
  const auto histogram = capacity_distribution(data, 120.0, 12);
  EXPECT_EQ(histogram.total(), 3u);  // napa peer excluded
  // 100 Mb/s lands in the [100, 110) bin.
  EXPECT_EQ(histogram.count(10), 1u);
  // DSL and 20 Mb/s land in the low bins.
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(histogram.count(2), 1u);
}

}  // namespace
}  // namespace peerscope::aware
