// Property sweeps over the reference topology: hop counts stay in the
// Internet-plausible band the paper measured, paths are deterministic,
// and the structural orderings (LAN < intra-AS < intra-EU < EU-CN)
// hold for arbitrary endpoints.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace peerscope::net {
namespace {

const AsTopology& topo() {
  static const AsTopology t = make_reference_topology();
  return t;
}

Endpoint endpoint(AsId as, std::uint32_t host, int depth) {
  return {Ipv4Addr{0x14000000u + as.value() * 65536u + host}, as,
          topo().country_of_as(as), topo().region_of_as(as), depth};
}

class AsPairSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(AsPairSweep, HopCountsPlausibleAndStable) {
  const auto [a_value, b_value] = GetParam();
  const AsId a{a_value}, b{b_value};
  util::Rng rng{a_value * 31 + b_value};
  for (int trial = 0; trial < 24; ++trial) {
    const Endpoint src = endpoint(
        a, static_cast<std::uint32_t>(257 + rng.below(1000)),
        static_cast<int>(2 + rng.below(5)));
    const Endpoint dst = endpoint(
        b, static_cast<std::uint32_t>(70'000 + rng.below(1000)),
        static_cast<int>(2 + rng.below(5)));
    const PathInfo path = topo().path(src, dst);
    EXPECT_GE(path.hops, 4);
    EXPECT_LE(path.hops, 40);  // the TTL band real traceroutes inhabit
    EXPECT_GT(path.one_way_delay, util::SimTime::millis(1));
    EXPECT_LT(path.one_way_delay, util::SimTime::millis(400));
    // Determinism: the same pair always routes identically.
    const PathInfo again = topo().path(src, dst);
    EXPECT_EQ(path.hops, again.hops);
    EXPECT_EQ(path.one_way_delay, again.one_way_delay);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, AsPairSweep,
    ::testing::Values(std::make_pair(1u, 2u),      // EU NREN to EU NREN
                      std::make_pair(2u, 2u),      // intra-AS
                      std::make_pair(1u, 210u),    // EU to CN
                      std::make_pair(210u, 1u),    // CN to EU
                      std::make_pair(210u, 215u),  // CN to CN
                      std::make_pair(2u, 300u),    // EU to ROW
                      std::make_pair(11u, 2u),     // home ISP to NREN
                      std::make_pair(400u, 210u),  // EU eyeball to CN
                      std::make_pair(6u, 4u)));    // PL to FR

TEST(TopologyOrdering, DistanceClassesAreOrdered) {
  using namespace refas;
  util::Rng rng{5};
  double lan = 0, intra_as = 0, intra_eu = 0, eu_cn = 0;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const auto host = static_cast<std::uint32_t>(rng.below(200));
    const Endpoint a{Ipv4Addr{0x14000100u + host}, kAs2, kItaly,
                     Region::kEurope, 2};
    const Endpoint lan_peer{Ipv4Addr{0x14000100u + ((host + 1) % 200)},
                            kAs2, kItaly, Region::kEurope, 2};
    const Endpoint as_peer = endpoint(kAs2, 70'000 + host, 3);
    const Endpoint eu_peer = endpoint(kAs1, 70'000 + host, 3);
    const Endpoint cn_peer = endpoint(kCnIspFirst, 70'000 + host, 4);
    lan += topo().path(a, lan_peer).hops;
    intra_as += topo().path(a, as_peer).hops;
    intra_eu += topo().path(a, eu_peer).hops;
    eu_cn += topo().path(a, cn_peer).hops;
  }
  EXPECT_LT(lan / n, intra_as / n);
  EXPECT_LT(intra_as / n, intra_eu / n);
  EXPECT_LT(intra_eu / n, eu_cn / n);
  // The EU-CN band straddles the paper's 19-hop median.
  EXPECT_GT(eu_cn / n, 15.0);
  EXPECT_LT(eu_cn / n, 28.0);
}

TEST(TopologyOrdering, AsymmetryIsBoundedByTwoHops) {
  using namespace refas;
  util::Rng rng{9};
  for (int i = 0; i < 60; ++i) {
    const Endpoint a = endpoint(kAs2, 70'000 + static_cast<std::uint32_t>(i),
                                3);
    const Endpoint b = endpoint(
        AsId{kCnIspFirst.value() + static_cast<std::uint32_t>(rng.below(6))},
        80'000 + static_cast<std::uint32_t>(i), 4);
    const int fwd = topo().path(a, b).hops;
    const int rev = topo().path(b, a).hops;
    EXPECT_LE(std::abs(fwd - rev), 4);  // 2 per direction at most
  }
}

}  // namespace
}  // namespace peerscope::net
