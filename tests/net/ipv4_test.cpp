#include "net/ipv4.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace peerscope::net {
namespace {

TEST(Ipv4Addr, OctetConstruction) {
  const Ipv4Addr a{10, 1, 2, 3};
  EXPECT_EQ(a.bits(), 0x0a010203u);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 1);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 3);
}

TEST(Ipv4Addr, ToStringDottedQuad) {
  EXPECT_EQ((Ipv4Addr{0, 0, 0, 0}).to_string(), "0.0.0.0");
  EXPECT_EQ((Ipv4Addr{255, 255, 255, 255}).to_string(), "255.255.255.255");
  EXPECT_EQ((Ipv4Addr{192, 168, 1, 42}).to_string(), "192.168.1.42");
}

TEST(Ipv4Addr, ParseRoundTrip) {
  for (const std::string text :
       {"0.0.0.0", "10.20.30.40", "255.255.255.255", "1.2.3.4"}) {
    const auto parsed = Ipv4Addr::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_string(), text);
  }
}

class Ipv4ParseRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseRejects, Malformed) {
  EXPECT_FALSE(Ipv4Addr::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, Ipv4ParseRejects,
    ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.999",
                      "a.b.c.d", "1..2.3", "1.2.3.4 ", " 1.2.3.4", "01.2.3.4",
                      "1.2.3.-4", "1,2,3,4", "1.2.3.4x"));

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT((Ipv4Addr{1, 0, 0, 0}), (Ipv4Addr{2, 0, 0, 0}));
  EXPECT_LT((Ipv4Addr{1, 0, 0, 1}), (Ipv4Addr{1, 0, 0, 2}));
  EXPECT_EQ((Ipv4Addr{9, 9, 9, 9}), (Ipv4Addr{9, 9, 9, 9}));
}

TEST(Ipv4Addr, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<Ipv4Addr>{}(Ipv4Addr{0x0a000000u + i}));
  }
  // Sequential addresses must not collide.
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ipv4Addr, UsableInUnorderedSet) {
  std::unordered_set<Ipv4Addr> set;
  set.insert(Ipv4Addr{1, 2, 3, 4});
  set.insert(Ipv4Addr{1, 2, 3, 4});
  set.insert(Ipv4Addr{1, 2, 3, 5});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Ipv4Addr{1, 2, 3, 4}));
}

}  // namespace
}  // namespace peerscope::net
