#include "net/access.hpp"

#include <gtest/gtest.h>

namespace peerscope::net {
namespace {

TEST(AccessLink, Lan100Defaults) {
  const AccessLink lan = AccessLink::lan100();
  EXPECT_EQ(lan.kind, AccessKind::kLan);
  EXPECT_EQ(lan.up_bps, 100'000'000);
  EXPECT_EQ(lan.down_bps, 100'000'000);
  EXPECT_EQ(lan.down_line_bps, 100'000'000);
  EXPECT_FALSE(lan.nat);
  EXPECT_FALSE(lan.firewall);
  EXPECT_TRUE(lan.is_high_bandwidth());
}

TEST(AccessLink, DslRatesFromTable1) {
  const AccessLink dsl = AccessLink::dsl(6, 0.512);
  EXPECT_EQ(dsl.kind, AccessKind::kDsl);
  EXPECT_EQ(dsl.down_bps, 6'000'000);
  EXPECT_EQ(dsl.up_bps, 512'000);
  EXPECT_FALSE(dsl.is_high_bandwidth());
}

TEST(AccessLink, ShapedDownlinkHasLineRateHeadroom) {
  // ADSL2+ line rate: short bursts pass at >= 24 Mb/s even on a 2 Mb/s
  // plan (packet-pair measures the line, not the shaper).
  const AccessLink dsl = AccessLink::dsl(2, 0.256);
  EXPECT_EQ(dsl.down_line_bps, 24'000'000);
  // A plan above the nominal line rate keeps its own rate.
  const AccessLink fast = AccessLink::dsl(30, 3);
  EXPECT_EQ(fast.down_line_bps, 30'000'000);
  // DOCSIS channel rate for cable.
  const AccessLink cable = AccessLink::catv(6, 0.512);
  EXPECT_EQ(cable.down_line_bps, 38'000'000);
}

TEST(AccessLink, HighBandwidthBoundaryIsTenMbps) {
  AccessLink link = AccessLink::lan100();
  link.up_bps = 10'000'000;
  EXPECT_FALSE(link.is_high_bandwidth());  // strictly greater than
  link.up_bps = 10'000'001;
  EXPECT_TRUE(link.is_high_bandwidth());
}

TEST(AccessLink, TransmissionTimes) {
  const AccessLink lan = AccessLink::lan100();
  EXPECT_EQ(lan.up_tx_time(1250).ns(), 100'000);
  EXPECT_EQ(lan.down_tx_time(1250).ns(), 100'000);

  const AccessLink dsl = AccessLink::dsl(4, 0.384);
  EXPECT_EQ(dsl.up_tx_time(1250).ns(), 26'041'667);
  // Downlink spacing at line rate (24 Mb/s), not the 4 Mb/s plan.
  EXPECT_EQ(dsl.down_tx_time(1250).ns(), 416'667);
}

TEST(AccessLink, NatAndFirewallFlags) {
  const AccessLink link = AccessLink::dsl(8, 0.384, true, true);
  EXPECT_TRUE(link.nat);
  EXPECT_TRUE(link.firewall);
}

TEST(AccessLink, Describe) {
  EXPECT_EQ(AccessLink::lan100().describe(), "high-bw");
  EXPECT_EQ(AccessLink::dsl(6, 0.512).describe(), "DSL 6/0.512");
  EXPECT_EQ(AccessLink::dsl(8, 0.384, true).describe(), "DSL 8/0.384 NAT");
  EXPECT_EQ(AccessLink::catv(6, 0.512).describe(), "CATV 6/0.512");
}

TEST(AccessKindNames, Render) {
  EXPECT_EQ(to_string(AccessKind::kLan), "high-bw");
  EXPECT_EQ(to_string(AccessKind::kDsl), "DSL");
  EXPECT_EQ(to_string(AccessKind::kCatv), "CATV");
}

}  // namespace
}  // namespace peerscope::net
