#include "net/allocator.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace peerscope::net {
namespace {

TEST(AddressAllocator, RegisterAnnouncesBlock) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  const Ipv4Prefix block = alloc.register_as(AsId{7}, kItaly);
  EXPECT_EQ(block.length(), 16);
  EXPECT_EQ(registry.as_of(block.at(1234)), AsId{7});
  EXPECT_EQ(registry.country_of(block.at(1)), kItaly);
}

TEST(AddressAllocator, RegisterIsIdempotent) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  const Ipv4Prefix a = alloc.register_as(AsId{7}, kItaly);
  const Ipv4Prefix b = alloc.register_as(AsId{7}, kItaly);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.prefix_count(), 1u);
}

TEST(AddressAllocator, DistinctAsGetDistinctBlocks) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  const Ipv4Prefix a = alloc.register_as(AsId{1}, kItaly);
  const Ipv4Prefix b = alloc.register_as(AsId{2}, kFrance);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(AddressAllocator, SubnetsAreDisjointAndInsideBlock) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  const Ipv4Prefix block = alloc.register_as(AsId{1}, kItaly);
  const Ipv4Prefix s1 = alloc.new_subnet(AsId{1});
  const Ipv4Prefix s2 = alloc.new_subnet(AsId{1});
  EXPECT_TRUE(block.contains(s1));
  EXPECT_TRUE(block.contains(s2));
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1.length(), 24);
}

TEST(AddressAllocator, HostsInSubnetAreUniqueAndValid) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  alloc.register_as(AsId{1}, kItaly);
  const Ipv4Prefix subnet = alloc.new_subnet(AsId{1});
  std::unordered_set<Ipv4Addr> seen;
  for (int i = 0; i < 254; ++i) {
    const Ipv4Addr host = alloc.new_host_in_subnet(subnet);
    EXPECT_TRUE(subnet.contains(host));
    EXPECT_NE(host.octet(3), 0);
    EXPECT_NE(host.octet(3), 255);
    EXPECT_TRUE(seen.insert(host).second);
  }
  EXPECT_THROW((void)alloc.new_host_in_subnet(subnet), std::runtime_error);
}

TEST(AddressAllocator, ScatteredHostsNeverCollideWithLans) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  const Ipv4Prefix block = alloc.register_as(AsId{1}, kItaly);
  const Ipv4Prefix lan = alloc.new_subnet(AsId{1});
  std::unordered_set<Ipv4Addr> seen;
  for (int i = 0; i < 5000; ++i) {
    const Ipv4Addr host = alloc.new_host(AsId{1});
    EXPECT_TRUE(block.contains(host));
    EXPECT_FALSE(lan.contains(host));
    EXPECT_TRUE(seen.insert(host).second);
  }
}

TEST(AddressAllocator, UnknownAsThrows) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  EXPECT_THROW((void)alloc.new_host(AsId{9}), std::out_of_range);
  EXPECT_THROW((void)alloc.new_subnet(AsId{9}), std::out_of_range);
  EXPECT_THROW((void)alloc.new_host_in_subnet(
                   Ipv4Prefix{Ipv4Addr{1, 2, 3, 0}, 24}),
               std::out_of_range);
}

TEST(AddressAllocator, RegistryResolvesAllocatedHosts) {
  NetRegistry registry;
  AddressAllocator alloc{registry};
  alloc.register_as(AsId{42}, kChina);
  const Ipv4Addr host = alloc.new_host(AsId{42});
  EXPECT_EQ(registry.as_of(host), AsId{42});
  EXPECT_EQ(registry.country_of(host), kChina);
}

}  // namespace
}  // namespace peerscope::net
