#include "net/registry.hpp"

#include <gtest/gtest.h>

namespace peerscope::net {
namespace {

TEST(PrefixMap, LongestPrefixWins) {
  PrefixMap<int> map;
  map.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  map.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  map.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 24);

  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.1.2.3")), 24);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.1.9.9")), 16);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.99.0.1")), 8);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("11.0.0.1")), std::nullopt);
}

TEST(PrefixMap, InsertReplacesExisting) {
  PrefixMap<int> map;
  map.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  map.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.5.5.5")), 2);
}

TEST(PrefixMap, HostRouteMatchesFirst) {
  PrefixMap<int> map;
  map.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  map.insert(*Ipv4Prefix::parse("10.0.0.1/32"), 32);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.0.0.1")), 32);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.0.0.2")), 8);
}

TEST(PrefixMap, DefaultRouteCoversEverything) {
  PrefixMap<int> map;
  map.insert(Ipv4Prefix{Ipv4Addr{}, 0}, -1);
  EXPECT_EQ(map.lookup(Ipv4Addr{203, 0, 113, 9}), -1);
}

TEST(PrefixMap, ExactLookup) {
  PrefixMap<int> map;
  map.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  EXPECT_EQ(map.exact(*Ipv4Prefix::parse("10.1.0.0/16")), 16);
  EXPECT_EQ(map.exact(*Ipv4Prefix::parse("10.1.0.0/17")), std::nullopt);
  EXPECT_EQ(map.exact(*Ipv4Prefix::parse("10.2.0.0/16")), std::nullopt);
}

TEST(NetRegistry, AsAndCountryLookups) {
  NetRegistry registry;
  registry.announce(*Ipv4Prefix::parse("20.0.0.0/16"), AsId{64512},
                    CountryCode{'I', 'T'});
  registry.announce(*Ipv4Prefix::parse("20.1.0.0/16"), AsId{64513},
                    CountryCode{'C', 'N'});

  EXPECT_EQ(registry.as_of(*Ipv4Addr::parse("20.0.5.5")), AsId{64512});
  EXPECT_EQ(registry.country_of(*Ipv4Addr::parse("20.0.5.5")).to_string(),
            "IT");
  EXPECT_EQ(registry.as_of(*Ipv4Addr::parse("20.1.0.1")), AsId{64513});
  EXPECT_EQ(registry.prefix_count(), 2u);
}

TEST(NetRegistry, UnknownAddressYieldsUnknowns) {
  NetRegistry registry;
  EXPECT_FALSE(registry.as_of(Ipv4Addr{1, 1, 1, 1}).known());
  EXPECT_FALSE(registry.country_of(Ipv4Addr{1, 1, 1, 1}).known());
  EXPECT_EQ(registry.lookup(Ipv4Addr{1, 1, 1, 1}), std::nullopt);
}

TEST(NetRegistry, PrefixesOfTracksAnnouncements) {
  NetRegistry registry;
  const AsId as{100};
  registry.announce(*Ipv4Prefix::parse("20.0.0.0/16"), as,
                    CountryCode{'F', 'R'});
  registry.announce(*Ipv4Prefix::parse("20.5.0.0/16"), as,
                    CountryCode{'F', 'R'});
  ASSERT_EQ(registry.prefixes_of(as).size(), 2u);
  EXPECT_TRUE(registry.prefixes_of(AsId{999}).empty());
}

TEST(AsIdAndCountryCode, Basics) {
  EXPECT_EQ(AsId{7}.to_string(), "AS7");
  EXPECT_FALSE(AsId{}.known());
  EXPECT_TRUE(AsId{1}.known());

  EXPECT_EQ(CountryCode('C', 'N').to_string(), "CN");
  EXPECT_EQ(CountryCode{}.to_string(), "??");
  EXPECT_EQ(CountryCode{"IT"}.to_string(), "IT");
  EXPECT_FALSE(CountryCode{"ITA"}.known());
  EXPECT_EQ(kChina, CountryCode{"CN"});
}

}  // namespace
}  // namespace peerscope::net
