#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace peerscope::net {
namespace {

AsTopology small_topology() {
  AsTopology topo;
  topo.add_as(AsId{1}, kItaly, Region::kEurope, /*transit=*/2, /*border=*/1);
  topo.add_as(AsId{2}, kFrance, Region::kEurope, 3, 1);
  topo.add_as(AsId{3}, kChina, Region::kAsia, 4, 2);
  topo.connect(AsId{1}, AsId{2});
  topo.connect(AsId{2}, AsId{3});
  topo.finalize();
  return topo;
}

TEST(AsTopology, PathHopsOnLine) {
  const AsTopology topo = small_topology();
  EXPECT_EQ(topo.as_path_hops(AsId{1}, AsId{1}), 0);
  // 1 -> 2: enter AS2 (1 hop), destination AS is not transited.
  EXPECT_EQ(topo.as_path_hops(AsId{1}, AsId{2}), 1);
  // 1 -> 3: enter AS2 (1) + transit AS2 (3) + enter AS3 (1).
  EXPECT_EQ(topo.as_path_hops(AsId{1}, AsId{3}), 5);
  // Reverse direction: enter AS2 (1) + transit AS2 (3) + enter AS1 (1).
  EXPECT_EQ(topo.as_path_hops(AsId{3}, AsId{1}), 5);
}

TEST(AsTopology, MetadataLookups) {
  const AsTopology topo = small_topology();
  EXPECT_EQ(topo.country_of_as(AsId{3}), kChina);
  EXPECT_EQ(topo.region_of_as(AsId{3}), Region::kAsia);
  EXPECT_TRUE(topo.contains(AsId{1}));
  EXPECT_FALSE(topo.contains(AsId{99}));
  EXPECT_EQ(topo.as_count(), 3u);
}

TEST(AsTopology, AsIdsInInsertionOrder) {
  const AsTopology topo = small_topology();
  const auto ids = topo.as_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], AsId{1});
  EXPECT_EQ(ids[2], AsId{3});
}

TEST(AsTopology, ErrorsOnMisuse) {
  AsTopology topo;
  topo.add_as(AsId{1}, kItaly, Region::kEurope);
  EXPECT_THROW(topo.add_as(AsId{1}, kItaly, Region::kEurope),
               std::invalid_argument);
  EXPECT_THROW(topo.connect(AsId{1}, AsId{1}), std::invalid_argument);
  EXPECT_THROW(topo.connect(AsId{1}, AsId{9}), std::out_of_range);
  EXPECT_THROW((void)topo.as_path_hops(AsId{1}, AsId{1}), std::logic_error);
  topo.finalize();
  EXPECT_THROW(topo.add_as(AsId{2}, kItaly, Region::kEurope),
               std::logic_error);
  EXPECT_THROW((void)topo.as_path_hops(AsId{1}, AsId{9}), std::out_of_range);
}

TEST(AsTopology, DisconnectedPairThrows) {
  AsTopology topo;
  topo.add_as(AsId{1}, kItaly, Region::kEurope);
  topo.add_as(AsId{2}, kChina, Region::kAsia);
  topo.finalize();
  EXPECT_THROW((void)topo.as_path_hops(AsId{1}, AsId{2}),
               std::runtime_error);
}

TEST(AsTopology, ConnectIsIdempotent) {
  AsTopology topo;
  topo.add_as(AsId{1}, kItaly, Region::kEurope);
  topo.add_as(AsId{2}, kFrance, Region::kEurope);
  topo.connect(AsId{1}, AsId{2});
  topo.connect(AsId{1}, AsId{2});
  topo.connect(AsId{2}, AsId{1});
  topo.finalize();
  EXPECT_EQ(topo.as_path_hops(AsId{1}, AsId{2}), 1);
}

TEST(AsTopology, SameSubnetPathIsZeroHops) {
  const AsTopology topo = small_topology();
  const Endpoint a{Ipv4Addr{10, 0, 1, 5}, AsId{1}, kItaly, Region::kEurope, 3};
  const Endpoint b{Ipv4Addr{10, 0, 1, 9}, AsId{1}, kItaly, Region::kEurope, 2};
  const PathInfo path = topo.path(a, b);
  EXPECT_EQ(path.hops, 0);
  EXPECT_LT(path.one_way_delay, util::SimTime::millis(1));
}

TEST(AsTopology, IntraAsPathUsesDepthsAndCore) {
  const AsTopology topo = small_topology();
  const Endpoint a{Ipv4Addr{10, 0, 1, 5}, AsId{1}, kItaly, Region::kEurope, 3};
  const Endpoint b{Ipv4Addr{10, 0, 9, 9}, AsId{1}, kItaly, Region::kEurope, 2};
  // depth(3) + transit core (2) + depth(2).
  EXPECT_EQ(topo.path(a, b).hops, 7);
}

TEST(AsTopology, InterAsPathBounds) {
  const AsTopology topo = small_topology();
  const Endpoint a{Ipv4Addr{10, 0, 1, 5}, AsId{1}, kItaly, Region::kEurope, 2};
  const Endpoint c{Ipv4Addr{11, 0, 1, 5}, AsId{3}, kChina, Region::kAsia, 4};
  const int base = 2 + 1 + topo.as_path_hops(AsId{1}, AsId{3}) + 2 + 4;
  const int hops = topo.path(a, c).hops;
  EXPECT_GE(hops, base);
  EXPECT_LE(hops, base + 2);  // asymmetry adds at most 2
}

TEST(AsTopology, PathIsDeterministic) {
  const AsTopology topo = small_topology();
  const Endpoint a{Ipv4Addr{10, 0, 1, 5}, AsId{1}, kItaly, Region::kEurope, 2};
  const Endpoint c{Ipv4Addr{11, 0, 1, 5}, AsId{3}, kChina, Region::kAsia, 4};
  const PathInfo p1 = topo.path(a, c);
  const PathInfo p2 = topo.path(a, c);
  EXPECT_EQ(p1.hops, p2.hops);
  EXPECT_EQ(p1.one_way_delay, p2.one_way_delay);
}

TEST(AsTopology, IntercontinentalDelayDominatesIntraEuropean) {
  const AsTopology topo = small_topology();
  const Endpoint a{Ipv4Addr{10, 0, 1, 5}, AsId{1}, kItaly, Region::kEurope, 2};
  const Endpoint b{Ipv4Addr{12, 0, 1, 5}, AsId{2}, kFrance, Region::kEurope,
                   2};
  const Endpoint c{Ipv4Addr{11, 0, 1, 5}, AsId{3}, kChina, Region::kAsia, 4};
  EXPECT_GT(topo.path(a, c).one_way_delay, topo.path(a, b).one_way_delay * 3);
}

TEST(ReferenceTopology, AllPairsConnected) {
  const AsTopology topo = make_reference_topology();
  const auto ids = topo.as_ids();
  EXPECT_GT(ids.size(), 20u);
  for (const AsId a : ids) {
    for (const AsId b : ids) {
      EXPECT_NO_THROW((void)topo.as_path_hops(a, b));
    }
  }
}

TEST(ReferenceTopology, InstitutionAsCountriesMatchTable1) {
  const AsTopology topo = make_reference_topology();
  using namespace refas;
  EXPECT_EQ(topo.country_of_as(kAs1), kHungary);
  EXPECT_EQ(topo.country_of_as(kAs2), kItaly);
  EXPECT_EQ(topo.country_of_as(kAs3), kHungary);
  EXPECT_EQ(topo.country_of_as(kAs4), kFrance);
  EXPECT_EQ(topo.country_of_as(kAs5), kFrance);
  EXPECT_EQ(topo.country_of_as(kAs6), kPoland);
}

TEST(ReferenceTopology, ChinesePathsAreLongerThanEuropean) {
  const AsTopology topo = make_reference_topology();
  using namespace refas;
  const int eu = topo.as_path_hops(kAs1, kAs2);
  const int cn = topo.as_path_hops(kAs1, kCnIspFirst);
  EXPECT_GT(cn, eu);
}

TEST(ReferenceTopology, HopCountsAreForwardReverseAsymmetric) {
  const AsTopology topo = make_reference_topology();
  using namespace refas;
  const Endpoint eu{Ipv4Addr{20, 0, 0, 5}, kAs2, kItaly, Region::kEurope, 2};
  // Scan a few remote endpoints; at least one pair must differ between
  // directions (the asymmetry the paper's §III-C worries about).
  int asymmetric = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    const Endpoint cn{Ipv4Addr{30, 0, 0, static_cast<std::uint8_t>(i + 1)},
                      kCnIspFirst, kChina, Region::kAsia, 4};
    if (topo.path(eu, cn).hops != topo.path(cn, eu).hops) ++asymmetric;
  }
  EXPECT_GT(asymmetric, 0);
}

TEST(RegionNames, Render) {
  EXPECT_EQ(to_string(Region::kEurope), "EU");
  EXPECT_EQ(to_string(Region::kAsia), "AS");
  EXPECT_EQ(to_string(Region::kNorthAmerica), "NA");
  EXPECT_EQ(to_string(Region::kOther), "OT");
}

}  // namespace
}  // namespace peerscope::net
