#include "net/prefix.hpp"

#include <gtest/gtest.h>

namespace peerscope::net {
namespace {

TEST(Ipv4Prefix, CanonicalisesHostBits) {
  const Ipv4Prefix p{Ipv4Addr{10, 1, 2, 3}, 24};
  EXPECT_EQ(p.base(), (Ipv4Addr{10, 1, 2, 0}));
  EXPECT_EQ(p.length(), 24);
}

TEST(Ipv4Prefix, MaskValues) {
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr{}, 0}).mask(), 0u);
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr{}, 8}).mask(), 0xff000000u);
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr{}, 24}).mask(), 0xffffff00u);
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr{}, 32}).mask(), 0xffffffffu);
}

TEST(Ipv4Prefix, ContainsAddress) {
  const Ipv4Prefix p{Ipv4Addr{10, 1, 0, 0}, 16};
  EXPECT_TRUE(p.contains(Ipv4Addr{10, 1, 200, 9}));
  EXPECT_FALSE(p.contains(Ipv4Addr{10, 2, 0, 0}));
  // /0 contains everything.
  const Ipv4Prefix all{Ipv4Addr{}, 0};
  EXPECT_TRUE(all.contains(Ipv4Addr{255, 1, 2, 3}));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const Ipv4Prefix p16{Ipv4Addr{10, 1, 0, 0}, 16};
  const Ipv4Prefix p24{Ipv4Addr{10, 1, 7, 0}, 24};
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(Ipv4Prefix, SizeAndAt) {
  const Ipv4Prefix p{Ipv4Addr{10, 1, 2, 0}, 24};
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0), (Ipv4Addr{10, 1, 2, 0}));
  EXPECT_EQ(p.at(255), (Ipv4Addr{10, 1, 2, 255}));
  EXPECT_EQ((Ipv4Prefix{Ipv4Addr{}, 32}).size(), 1u);
}

TEST(Ipv4Prefix, ToStringAndParse) {
  const Ipv4Prefix p{Ipv4Addr{192, 168, 0, 0}, 16};
  EXPECT_EQ(p.to_string(), "192.168.0.0/16");
  const auto parsed = Ipv4Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

class PrefixParseRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(PrefixParseRejects, Malformed) {
  EXPECT_FALSE(Ipv4Prefix::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BadInputs, PrefixParseRejects,
                         ::testing::Values("", "10.0.0.0", "10.0.0.0/",
                                           "10.0.0.0/33", "10.0.0.0/-1",
                                           "10.0.0/24", "10.0.0.0/8x",
                                           "/24"));

TEST(Ipv4Prefix, ParseCanonicalises) {
  const auto p = Ipv4Prefix::parse("10.1.2.3/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->base(), (Ipv4Addr{10, 1, 0, 0}));
}

TEST(SameSubnet24, Basics) {
  EXPECT_TRUE(same_subnet24(Ipv4Addr{10, 0, 1, 5}, Ipv4Addr{10, 0, 1, 200}));
  EXPECT_FALSE(same_subnet24(Ipv4Addr{10, 0, 1, 5}, Ipv4Addr{10, 0, 2, 5}));
  EXPECT_TRUE(same_subnet24(Ipv4Addr{1, 2, 3, 4}, Ipv4Addr{1, 2, 3, 4}));
}

}  // namespace
}  // namespace peerscope::net
