// CalendarQueue contract tests: exact (at, seq) pop order against a
// std::priority_queue reference model, plus the adaptive-resize and
// cursor-seek behaviours the engine's determinism guarantee leans on
// (DESIGN.md §14).
#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace peerscope::sim {
namespace {

struct RefEntry {
  std::int64_t at;
  std::uint64_t seq;
  std::uint32_t node;
};

// min-heap on (at, seq): the engine's total order.
struct RefAfter {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefAfter>;

void expect_same_pop(CalendarQueue& queue, RefQueue& ref) {
  ASSERT_EQ(queue.size(), ref.size());
  const RefEntry want = ref.top();
  ref.pop();
  const CalendarQueue::Entry& min = queue.min();
  EXPECT_EQ(min.at, want.at);
  EXPECT_EQ(min.seq, want.seq);
  const CalendarQueue::Entry got = queue.pop_min();
  EXPECT_EQ(got.at, want.at);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.node, want.node);
}

TEST(CalendarQueue, StartsEmpty) {
  CalendarQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, SingleEntryRoundTrips) {
  CalendarQueue queue;
  queue.push(42, 1, 7);
  EXPECT_EQ(queue.size(), 1u);
  const CalendarQueue::Entry entry = queue.pop_min();
  EXPECT_EQ(entry.at, 42);
  EXPECT_EQ(entry.seq, 1u);
  EXPECT_EQ(entry.node, 7u);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, TiesBreakByInsertionSequence) {
  CalendarQueue queue;
  // Same timestamp, shuffled insertion: pops must come back in seq
  // order because seq encodes scheduling order.
  queue.push(1000, 3, 30);
  queue.push(1000, 1, 10);
  queue.push(1000, 2, 20);
  EXPECT_EQ(queue.pop_min().seq, 1u);
  EXPECT_EQ(queue.pop_min().seq, 2u);
  EXPECT_EQ(queue.pop_min().seq, 3u);
}

TEST(CalendarQueue, MatchesPriorityQueueOnRandomWorkload) {
  // Interleaved pushes and pops over timestamps spanning ns to tens of
  // seconds — wide enough to cross many calendar days and trigger
  // both grow and shrink resizes along the way.
  util::Rng rng{0xC0FFEEu};
  CalendarQueue queue;
  RefQueue ref;
  std::uint64_t seq = 1;
  std::int64_t now = 0;
  for (int round = 0; round < 20'000; ++round) {
    const bool push = ref.empty() || rng.chance(0.55);
    if (push) {
      // Mostly near-future, occasionally far-future, sometimes exactly
      // "now" (a callback scheduling at the current instant).
      std::int64_t delta = 0;
      const double kind = rng.uniform01();
      if (kind < 0.1) {
        delta = 0;
      } else if (kind < 0.9) {
        delta = static_cast<std::int64_t>(rng.below(2'000'000));
      } else {
        delta = static_cast<std::int64_t>(rng.below(30'000'000'000));
      }
      const std::int64_t at = now + delta;
      const auto node = static_cast<std::uint32_t>(seq & 0xFFFFFFu);
      queue.push(at, seq, node);
      ref.push({at, seq, node});
      ++seq;
    } else {
      ASSERT_NO_FATAL_FAILURE(expect_same_pop(queue, ref));
      if (!ref.empty()) now = ref.top().at;
    }
  }
  while (!ref.empty()) {
    ASSERT_NO_FATAL_FAILURE(expect_same_pop(queue, ref));
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, GrowsAndShrinksWithLoad) {
  CalendarQueue queue;
  const std::size_t initial = queue.bucket_count();
  // Load far past the 2x-occupancy trigger: the calendar must widen.
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    queue.push(static_cast<std::int64_t>(i * 1'000'000), i + 1, 0);
  }
  EXPECT_GT(queue.bucket_count(), initial);
  // Drain back down: the calendar must give the memory back.
  while (!queue.empty()) queue.pop_min();
  EXPECT_EQ(queue.bucket_count(), initial);
}

TEST(CalendarQueue, ResizePreservesOrderUnderClusteredTimestamps) {
  // Thousands of entries packed into a handful of calendar days (all
  // within a few µs) force long per-bucket chains and a degenerate
  // span; order must survive the redistributions.
  CalendarQueue queue;
  RefQueue ref;
  util::Rng rng{17};
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    const auto at = static_cast<std::int64_t>(rng.below(4'096));
    queue.push(at, i + 1, static_cast<std::uint32_t>(i));
    ref.push({at, i + 1, static_cast<std::uint32_t>(i)});
  }
  while (!ref.empty()) {
    ASSERT_NO_FATAL_FAILURE(expect_same_pop(queue, ref));
  }
}

TEST(CalendarQueue, HandlesFarFutureThenNearEvents) {
  // A lone far-future event rotates the cursor through a whole year
  // (direct-search fallback); a later near event must still pop first
  // thanks to the seek-back on push.
  CalendarQueue queue;
  queue.push(3'600'000'000'000, 1, 1);  // one hour out
  EXPECT_EQ(queue.min().seq, 1u);       // cursor now parked at the hour
  queue.push(5, 2, 2);                  // 5 ns, far behind the cursor
  EXPECT_EQ(queue.pop_min().seq, 2u);
  EXPECT_EQ(queue.pop_min().seq, 1u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace peerscope::sim
