// Property sweeps over the packet-train physics: for any combination
// of sender uplink and receiver line rate, the receiver-observed
// minimum inter-packet gap must equal the bottleneck serialisation
// time — the invariant the whole BW methodology stands on.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/train.hpp"
#include "util/sim_time.hpp"

namespace peerscope::sim {
namespace {

using net::AccessLink;
using util::SimTime;

struct RatePair {
  std::int64_t sender_up_bps;
  std::int64_t receiver_line_bps;
};

class TrainRateSweep : public ::testing::TestWithParam<RatePair> {};

TEST_P(TrainRateSweep, MinGapEqualsBottleneckSerialisation) {
  const auto [up, line] = GetParam();
  AccessLink sender{net::AccessKind::kLan, up, up, up, false, false};
  AccessLink receiver{net::AccessKind::kLan, line, line, line, false,
                      false};
  LinkCursor up_cursor, down_cursor;
  util::Rng rng{99};
  TrainSpec spec;
  spec.packet_count = 13;
  spec.packet_bytes = 1250;
  spec.jitter_max = SimTime::zero();

  const TrainResult result = transmit_train(
      spec, sender, up_cursor, receiver, down_cursor,
      {15, SimTime::millis(50)}, rng);

  std::int64_t min_gap = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 1; i < result.arrivals.size(); ++i) {
    min_gap = std::min(min_gap,
                       (result.arrivals[i] - result.arrivals[i - 1]).ns());
  }
  const std::int64_t bottleneck =
      util::transmission_time(1250, std::min(up, line)).ns();
  EXPECT_EQ(min_gap, bottleneck);

  // Classification consequence: > 10 Mb/s bottleneck <=> gap < 1 ms.
  EXPECT_EQ(std::min(up, line) > 10'000'000, min_gap < 1'000'000);
}

TEST_P(TrainRateSweep, DeparturesNeverPrecedeStartAndStayOrdered) {
  const auto [up, line] = GetParam();
  AccessLink sender{net::AccessKind::kLan, up, up, up, false, false};
  AccessLink receiver{net::AccessKind::kLan, line, line, line, false,
                      false};
  LinkCursor up_cursor, down_cursor;
  util::Rng rng{7};
  TrainSpec spec;
  spec.packet_count = 8;
  spec.packet_bytes = 1250;
  spec.start = SimTime::seconds(3);

  const TrainResult result = transmit_train(
      spec, sender, up_cursor, receiver, down_cursor,
      {10, SimTime::millis(20)}, rng);
  EXPECT_GT(result.departures.front(), spec.start);
  EXPECT_TRUE(
      std::is_sorted(result.departures.begin(), result.departures.end()));
  EXPECT_TRUE(
      std::is_sorted(result.arrivals.begin(), result.arrivals.end()));
  // Causality: every arrival strictly after its departure.
  for (std::size_t i = 0; i < result.arrivals.size(); ++i) {
    EXPECT_GT(result.arrivals[i], result.departures[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AccessMatrix, TrainRateSweep,
    ::testing::Values(RatePair{100'000'000, 100'000'000},   // LAN-LAN
                      RatePair{20'000'000, 100'000'000},    // fiber up
                      RatePair{512'000, 100'000'000},       // DSL up
                      RatePair{100'000'000, 24'000'000},    // ADSL2+ line
                      RatePair{100'000'000, 38'000'000},    // DOCSIS line
                      RatePair{20'000'000, 24'000'000},     // both mid
                      RatePair{384'000, 24'000'000},        // slow to home
                      RatePair{1'000'000, 100'000'000},     // 1 Mb/s up
                      RatePair{10'100'000, 100'000'000}));  // just over 10M

TEST(TrainConservation, EveryPacketArrivesExactlyOnce) {
  AccessLink link = AccessLink::lan100();
  LinkCursor up, down;
  util::Rng rng{3};
  for (const int count : {1, 2, 13, 100}) {
    TrainSpec spec;
    spec.packet_count = count;
    spec.packet_bytes = 1250;
    spec.start = up.busy_until() + util::SimTime::millis(1);
    const TrainResult result =
        transmit_train(spec, link, up, link, down,
                       {5, util::SimTime::millis(10)}, rng);
    EXPECT_EQ(result.arrivals.size(), static_cast<std::size_t>(count));
    EXPECT_EQ(result.departures.size(), static_cast<std::size_t>(count));
  }
}

}  // namespace
}  // namespace peerscope::sim
