// Engine sampling-grid and live-progress hooks (§5.6): grid points
// are a pure function of (seed, configuration) — fired after every
// event with timestamp ≤ the grid time and before any event after it,
// flushed to a finite horizon even when the queue drains early, and
// absent entirely for open-ended runs.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/watchdog.hpp"

namespace peerscope::sim {
namespace {

using util::SimTime;

struct Sample {
  std::uint64_t index;
  std::int64_t at_ns;
  bool operator==(const Sample&) const = default;
};

std::vector<Sample>* capture_into(Engine& engine, SimTime interval,
                                  std::vector<Sample>& out) {
  engine.set_sampler(interval, [&out](std::uint64_t index, SimTime at) {
    out.push_back(Sample{index, at.ns()});
  });
  return &out;
}

TEST(EngineSampler, FiresEveryGridPointInOrder) {
  Engine engine;
  std::vector<Sample> samples;
  capture_into(engine, SimTime::millis(10), samples);
  for (int ms : {5, 15, 25}) {
    engine.schedule_at(SimTime::millis(ms), [] {});
  }
  engine.run_until(SimTime::millis(30));
  const std::vector<Sample> want{{0, SimTime::millis(10).ns()},
                                 {1, SimTime::millis(20).ns()},
                                 {2, SimTime::millis(30).ns()}};
  EXPECT_EQ(samples, want);
}

TEST(EngineSampler, EventsAtTheGridTimeExecuteBeforeTheSample) {
  // An event stamped exactly k·interval belongs to interval k: the
  // sample at that grid point must observe it.
  Engine engine;
  std::vector<std::string> log;
  engine.set_sampler(SimTime::millis(10), [&log](std::uint64_t, SimTime at) {
    log.push_back("sample@" + std::to_string(at.ns() / 1'000'000));
  });
  engine.schedule_at(SimTime::millis(10), [&log] { log.push_back("on-grid"); });
  engine.schedule_at(SimTime::millis(11), [&log] { log.push_back("after"); });
  engine.run_until(SimTime::millis(20));
  const std::vector<std::string> want{"on-grid", "sample@10", "after",
                                      "sample@20"};
  EXPECT_EQ(log, want);
}

TEST(EngineSampler, FiniteHorizonFlushesTheGridAfterTheQueueDrains) {
  Engine engine;
  std::vector<Sample> samples;
  capture_into(engine, SimTime::millis(10), samples);
  engine.schedule_at(SimTime::millis(5), [] {});
  engine.run_until(SimTime::millis(100));
  ASSERT_EQ(samples.size(), 10u);  // 10 ms .. 100 ms inclusive
  EXPECT_EQ(samples.front(), (Sample{0, SimTime::millis(10).ns()}));
  EXPECT_EQ(samples.back(), (Sample{9, SimTime::millis(100).ns()}));
}

TEST(EngineSampler, OpenEndedRunHasNoTrailingGrid) {
  // run() has no horizon, hence no grid end: once the queue drains,
  // sampling stops where execution stopped.
  Engine engine;
  std::vector<Sample> samples;
  capture_into(engine, SimTime::millis(10), samples);
  engine.schedule_at(SimTime::millis(5), [] {});
  engine.run();
  EXPECT_TRUE(samples.empty());
}

TEST(EngineSampler, GridContinuesAcrossDrives) {
  // Driving the engine in two run_until calls yields the same grid as
  // one call: indices and timestamps continue, nothing repeats.
  Engine engine;
  std::vector<Sample> samples;
  capture_into(engine, SimTime::millis(10), samples);
  engine.schedule_at(SimTime::millis(5), [] {});
  engine.schedule_at(SimTime::millis(22), [] {});
  engine.run_until(SimTime::millis(15));
  ASSERT_EQ(samples.size(), 1u);
  engine.run_until(SimTime::millis(30));
  const std::vector<Sample> want{{0, SimTime::millis(10).ns()},
                                 {1, SimTime::millis(20).ns()},
                                 {2, SimTime::millis(30).ns()}};
  EXPECT_EQ(samples, want);
}

TEST(EngineSampler, ZeroIntervalOrNullFnUninstalls) {
  Engine engine;
  std::vector<Sample> samples;
  capture_into(engine, SimTime::millis(10), samples);
  engine.set_sampler(SimTime::zero(),
                     [&samples](std::uint64_t, SimTime) {
                       samples.push_back({});
                     });
  engine.schedule_at(SimTime::millis(5), [] {});
  engine.run_until(SimTime::millis(50));
  EXPECT_TRUE(samples.empty());

  capture_into(engine, SimTime::millis(10), samples);
  engine.set_sampler(SimTime::millis(10), nullptr);
  engine.schedule_at(SimTime::millis(55), [] {});
  engine.run_until(SimTime::millis(100));
  EXPECT_TRUE(samples.empty());
}

TEST(EngineProgress, PublishesFinalCountsAfterADrive) {
  Engine engine;
  obs::RunProgress progress;
  engine.set_progress(&progress);
  engine.schedule_at(SimTime::millis(5), [] {});
  engine.schedule_at(SimTime::millis(7), [] {});
  engine.run_until(SimTime::millis(30));
  // now() ends at the last executed event, never at the horizon.
  EXPECT_EQ(progress.events.load(), 2u);
  EXPECT_EQ(progress.sim_time_ns.load(), SimTime::millis(7).ns());
}

TEST(EngineProgress, NullSinkIsTheDefaultAndSafe) {
  Engine engine;
  engine.set_progress(nullptr);
  engine.schedule_at(SimTime::millis(1), [] {});
  engine.run();
  EXPECT_EQ(engine.executed(), 1u);
}

}  // namespace
}  // namespace peerscope::sim
