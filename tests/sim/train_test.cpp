#include "sim/train.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/packet.hpp"

namespace peerscope::sim {
namespace {

using net::AccessLink;
using net::PathInfo;
using util::Rng;
using util::SimTime;

PathInfo flat_path(int hops = 10, SimTime delay = SimTime::millis(20)) {
  return {hops, delay};
}

TrainSpec spec13(SimTime start = SimTime::zero()) {
  TrainSpec spec;
  spec.start = start;
  spec.packet_count = 13;
  spec.packet_bytes = 1250;
  spec.jitter_max = SimTime::zero();  // deterministic timing for asserts
  return spec;
}

std::int64_t min_gap(const std::vector<SimTime>& arrivals) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    best = std::min(best, (arrivals[i] - arrivals[i - 1]).ns());
  }
  return best;
}

TEST(Train, ArrivalsAreMonotoneAndComplete) {
  AccessLink sender = AccessLink::lan100();
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r =
      transmit_train(spec13(), sender, up, receiver, down, flat_path(), rng);
  ASSERT_EQ(r.arrivals.size(), 13u);
  ASSERT_EQ(r.departures.size(), 13u);
  EXPECT_TRUE(std::is_sorted(r.arrivals.begin(), r.arrivals.end()));
  EXPECT_TRUE(std::is_sorted(r.departures.begin(), r.departures.end()));
  EXPECT_EQ(r.completed(), r.arrivals.back());
}

TEST(Train, LanToLanGapIsLanSerialisation) {
  AccessLink sender = AccessLink::lan100();
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r =
      transmit_train(spec13(), sender, up, receiver, down, flat_path(), rng);
  // 1250 B at 100 Mb/s = 100 us spacing at both ends.
  EXPECT_EQ(min_gap(r.arrivals), 100'000);
}

TEST(Train, SlowSenderSetsTheGap) {
  // DSL uplink 384 kb/s: ~26 ms per packet; classified low-bandwidth.
  AccessLink sender = AccessLink::dsl(4, 0.384);
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r =
      transmit_train(spec13(), sender, up, receiver, down, flat_path(), rng);
  EXPECT_EQ(min_gap(r.arrivals), 26'041'667);
  EXPECT_GT(min_gap(r.arrivals), 1'000'000);  // > 1 ms -> low-bandwidth
}

TEST(Train, TwentyMbpsSenderIsHighBandwidth) {
  AccessLink sender{net::AccessKind::kLan, 20'000'000, 20'000'000,
                    20'000'000, false, false};
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r =
      transmit_train(spec13(), sender, up, receiver, down, flat_path(), rng);
  // 1250 B at 20 Mb/s = 500 us < 1 ms -> high-bandwidth.
  EXPECT_EQ(min_gap(r.arrivals), 500'000);
}

TEST(Train, ShapedDslReceiverMeasuresLineRate) {
  // High-bw sender into a 4 Mb/s DSL plan: bursts pass the last mile at
  // the 24 Mb/s line rate, so min IPG stays below the 1 ms threshold.
  AccessLink sender = AccessLink::lan100();
  AccessLink receiver = AccessLink::dsl(4, 0.384);
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r =
      transmit_train(spec13(), sender, up, receiver, down, flat_path(), rng);
  EXPECT_EQ(min_gap(r.arrivals), 416'667);  // 1250 B at 24 Mb/s
  EXPECT_LT(min_gap(r.arrivals), 1'000'000);
}

TEST(Train, ConcurrentTrainsDoNotInterleaveOnUplink) {
  // Two chunks to two receivers: the second train queues behind the
  // first, and both keep their in-train spacing.
  AccessLink sender{net::AccessKind::kLan, 20'000'000, 20'000'000,
                    20'000'000, false, false};
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down_a, down_b;
  Rng rng{1};
  const TrainResult a = transmit_train(spec13(), sender, up, receiver, down_a,
                                       flat_path(), rng);
  const TrainResult b = transmit_train(spec13(), sender, up, receiver, down_b,
                                       flat_path(), rng);
  EXPECT_EQ(min_gap(a.arrivals), 500'000);
  EXPECT_EQ(min_gap(b.arrivals), 500'000);
  // Train b waited for a's full serialisation.
  EXPECT_GE(b.departures.front().ns(),
            a.departures.back().ns() + 500'000 - 1);
}

TEST(Train, PathDelayShiftsArrivals) {
  AccessLink link = AccessLink::lan100();
  LinkCursor up1, down1, up2, down2;
  Rng rng1{1}, rng2{1};
  const TrainResult near = transmit_train(
      spec13(), link, up1, link, down1, flat_path(5, SimTime::millis(10)),
      rng1);
  const TrainResult far = transmit_train(
      spec13(), link, up2, link, down2, flat_path(5, SimTime::millis(150)),
      rng2);
  EXPECT_EQ((far.arrivals.front() - near.arrivals.front()),
            SimTime::millis(140));
}

TEST(Train, JitterNeverReordersArrivals) {
  AccessLink sender = AccessLink::lan100();
  AccessLink receiver = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{7};
  TrainSpec spec = spec13();
  spec.jitter_max = SimTime::micros(500);  // bigger than the 100 us gap
  for (int i = 0; i < 20; ++i) {
    const TrainResult r =
        transmit_train(spec, sender, up, receiver, down, flat_path(), rng);
    EXPECT_TRUE(std::is_sorted(r.arrivals.begin(), r.arrivals.end()));
  }
}

TEST(Train, StartInFutureRespected) {
  AccessLink link = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  const TrainResult r = transmit_train(spec13(SimTime::seconds(5)), link, up,
                                       link, down, flat_path(), rng);
  EXPECT_GE(r.departures.front(), SimTime::seconds(5));
}

TEST(Train, RejectsEmptyTrain) {
  AccessLink link = AccessLink::lan100();
  LinkCursor up, down;
  Rng rng{1};
  TrainSpec bad = spec13();
  bad.packet_count = 0;
  EXPECT_THROW((void)transmit_train(bad, link, up, link, down, flat_path(),
                                    rng),
               std::invalid_argument);
  bad.packet_count = 5;
  bad.packet_bytes = 0;
  EXPECT_THROW((void)transmit_train(bad, link, up, link, down, flat_path(),
                                    rng),
               std::invalid_argument);
}

TEST(TtlAfter, DecrementsAndSaturates) {
  EXPECT_EQ(ttl_after(0), 128);
  EXPECT_EQ(ttl_after(19), 109);
  EXPECT_EQ(ttl_after(127), 1);
  EXPECT_EQ(ttl_after(1000), 1);
}

}  // namespace
}  // namespace peerscope::sim
