#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace peerscope::sim {
namespace {

using util::SimTime;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(SimTime::millis(30), [&order] { order.push_back(3); });
  engine.schedule_at(SimTime::millis(10), [&order] { order.push_back(1); });
  engine.schedule_at(SimTime::millis(20), [&order] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine engine;
  SimTime seen{0};
  engine.schedule_at(SimTime::millis(7), [&engine, &seen] {
    seen = engine.now();
  });
  engine.run();
  EXPECT_EQ(seen, SimTime::millis(7));
  EXPECT_EQ(engine.now(), SimTime::millis(7));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  SimTime fired{0};
  engine.schedule_at(SimTime::millis(10), [&engine, &fired] {
    engine.schedule_after(SimTime::millis(5),
                          [&engine, &fired] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired, SimTime::millis(15));
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::millis(10), [&fired] { ++fired; });
  engine.schedule_at(SimTime::millis(20), [&fired] { ++fired; });
  engine.schedule_at(SimTime::millis(30), [&fired] { ++fired; });
  engine.run_until(SimTime::millis(20));  // inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  int fired = 0;
  const auto handle =
      engine.schedule_at(SimTime::millis(5), [&fired] { ++fired; });
  EXPECT_TRUE(engine.cancel(handle));
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine engine;
  const auto handle = engine.schedule_at(SimTime::millis(5), [] {});
  EXPECT_TRUE(engine.cancel(handle));
  EXPECT_FALSE(engine.cancel(handle));
}

TEST(Engine, CancelAfterExecutionReturnsFalse) {
  Engine engine;
  const auto handle = engine.schedule_at(SimTime::millis(5), [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(handle));
}

TEST(Engine, NullHandleCancelIsFalse) {
  Engine engine;
  EXPECT_FALSE(engine.cancel(Engine::Handle{}));
}

TEST(Engine, SchedulingInPastThrows) {
  Engine engine;
  engine.schedule_at(SimTime::millis(10), [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(SimTime::millis(5), [] {}),
               std::logic_error);
  EXPECT_THROW(engine.schedule_after(SimTime::millis(-1), [] {}),
               std::logic_error);
}

TEST(Engine, NullCallbackThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule_at(SimTime::millis(1), nullptr),
               std::invalid_argument);
}

TEST(Engine, ExecutedCounts) {
  Engine engine;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(SimTime::millis(i + 1), [] {});
  }
  const auto cancelled = engine.schedule_at(SimTime::millis(9), [] {});
  engine.cancel(cancelled);
  engine.run();
  EXPECT_EQ(engine.executed(), 5u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, EventsCanScheduleEventsRecursively) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      engine.schedule_after(SimTime::micros(10), recurse);
    }
  };
  engine.schedule_at(SimTime::zero(), recurse);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.now(), SimTime::micros(990));
}

TEST(Engine, EventAtExactHorizonRuns) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(SimTime::seconds(1), [&fired] { fired = true; });
  engine.run_until(SimTime::seconds(1));
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelFromWithinEarlierEvent) {
  Engine engine;
  int fired = 0;
  const auto later =
      engine.schedule_at(SimTime::millis(20), [&fired] { ++fired; });
  engine.schedule_at(SimTime::millis(10), [&engine, later] {
    EXPECT_TRUE(engine.cancel(later));
  });
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, PreCancelledTokenStopsBeforeFirstEvent) {
  Engine engine;
  util::CancelToken token;
  token.request();
  engine.set_cancel(&token);
  int fired = 0;
  engine.schedule_at(SimTime::millis(1), [&fired] { ++fired; });
  EXPECT_THROW(engine.run(), util::Cancelled);
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancellationLandsOnStrideBoundary) {
  Engine engine;
  util::CancelToken token;
  engine.set_cancel(&token);
  int fired = 0;
  for (int i = 0; i < 600; ++i) {
    engine.schedule_at(SimTime::micros(i + 1), [&fired, &token] {
      if (++fired == 10) token.request();
    });
  }
  // The poll runs every kCancelStride events, so the request at event
  // 10 unwinds exactly when `executed_` reaches the next multiple.
  EXPECT_THROW(engine.run(), util::Cancelled);
  EXPECT_EQ(fired, static_cast<int>(Engine::kCancelStride));
  EXPECT_EQ(engine.executed(), Engine::kCancelStride);
}

TEST(Engine, ExpiredDeadlineTripsToken) {
  Engine engine;
  util::CancelToken token;
  token.set_deadline_after(std::chrono::nanoseconds{0});
  engine.set_cancel(&token);
  engine.schedule_at(SimTime::millis(1), [] {});
  EXPECT_THROW(engine.run(), util::Cancelled);
}

TEST(Engine, NullTokenNeverCancels) {
  Engine engine;
  engine.set_cancel(nullptr);
  int fired = 0;
  for (int i = 0; i < 300; ++i) {
    engine.schedule_at(SimTime::micros(i + 1), [&fired] { ++fired; });
  }
  engine.run();
  EXPECT_EQ(fired, 300);
}

}  // namespace
}  // namespace peerscope::sim
