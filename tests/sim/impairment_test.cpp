// Impairment model unit tests: the Gilbert–Elliott channel must honour
// its stationary loss rate, degenerate to the legacy Bernoulli draw at
// loss_burst <= 1, and never consume RNG when disabled; outage windows
// must be deterministic, hash-scheduled and RNG-free.
#include "sim/impairment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace peerscope::sim {
namespace {

using util::Rng;
using util::SimTime;

TEST(ImpairmentSpec, DefaultIsDisabled) {
  const ImpairmentSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(spec.has_loss());
  EXPECT_FALSE(spec.has_outage());
}

TEST(ImpairmentSpec, AnyKnobEnables) {
  ImpairmentSpec spec;
  spec.reorder_rate = 0.01;
  EXPECT_TRUE(spec.enabled());
  spec = ImpairmentSpec{};
  spec.duplicate_rate = 0.01;
  EXPECT_TRUE(spec.enabled());
  spec = ImpairmentSpec{};
  spec.outage_per_s = 0.1;
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.has_outage());
}

TEST(GilbertElliott, FlatLossMatchesLegacyBernoulliDrawForDraw) {
  // loss_burst <= 1 must reproduce the exact legacy `rng.chance(rate)`
  // sequence — the byte-identical-reproduction guarantee hangs on it.
  const auto spec = ImpairmentSpec::flat_loss(0.07);
  Rng a{1234};
  Rng b{1234};
  GilbertElliott channel;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(channel.lose(spec, a), b.chance(0.07)) << "draw " << i;
  }
  EXPECT_FALSE(channel.in_bad_state());
}

TEST(GilbertElliott, ZeroLossConsumesNoRng) {
  const ImpairmentSpec spec;  // loss_rate == 0
  Rng a{99};
  Rng b{99};
  GilbertElliott channel;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(channel.lose(spec, a));
  }
  // The two streams must still be in lockstep.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(GilbertElliott, StationaryLossRateIsHonoured) {
  ImpairmentSpec spec;
  spec.loss_rate = 0.05;
  spec.loss_burst = 4.0;
  Rng rng{7};
  GilbertElliott channel;
  int lost = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    if (channel.lose(spec, rng)) ++lost;
  }
  const double observed = static_cast<double>(lost) / kDraws;
  EXPECT_NEAR(observed, 0.05, 0.01);
}

TEST(GilbertElliott, LongRunRateMatchesSteadyStateAcrossTheKnobGrid) {
  // Statistical contract of the two-state chain: for every
  // (loss_rate, loss_burst) combination the long-run empirical drop
  // frequency must converge to the configured stationary rate, and the
  // mean observed burst length to the configured loss_burst. Fixed
  // seeds per combination keep the test deterministic; 400k draws make
  // the sampling error a fraction of the tolerances below.
  const double rates[] = {0.01, 0.05, 0.10};
  const double bursts[] = {1.5, 3.0, 8.0};
  constexpr int kDraws = 400000;
  std::uint64_t seed = 1000;
  for (const double rate : rates) {
    for (const double burst : bursts) {
      ImpairmentSpec spec;
      spec.loss_rate = rate;
      spec.loss_burst = burst;
      Rng rng{seed++};
      GilbertElliott channel;
      int lost = 0, burst_count = 0;
      bool prev = false;
      for (int i = 0; i < kDraws; ++i) {
        const bool drop = channel.lose(spec, rng);
        if (drop) {
          ++lost;
          if (!prev) ++burst_count;  // a new burst starts
        }
        prev = drop;
      }
      const double observed = static_cast<double>(lost) / kDraws;
      const double tol = std::max(0.15 * rate, 0.002);
      EXPECT_NEAR(observed, rate, tol)
          << "rate " << rate << " burst " << burst;
      ASSERT_GT(burst_count, 0) << "rate " << rate << " burst " << burst;
      const double mean_burst = static_cast<double>(lost) / burst_count;
      EXPECT_NEAR(mean_burst, burst, 0.35 * burst)
          << "rate " << rate << " burst " << burst;
    }
  }
}

TEST(GilbertElliott, BurstLossesAreCorrelated) {
  // With a mean burst length of 6, a loss is far more likely to follow
  // a loss than under independent drops at the same stationary rate.
  ImpairmentSpec spec;
  spec.loss_rate = 0.05;
  spec.loss_burst = 6.0;
  Rng rng{21};
  GilbertElliott channel;
  int losses = 0, losses_after_loss = 0;
  bool prev = false;
  for (int i = 0; i < 300000; ++i) {
    const bool lost = channel.lose(spec, rng);
    if (prev) {
      if (lost) ++losses_after_loss;
      ++losses;
    }
    prev = lost;
  }
  ASSERT_GT(losses, 0);
  const double p_loss_given_loss =
      static_cast<double>(losses_after_loss) / losses;
  // 1 - 1/burst = 0.833 in the bad state; flat would give 0.05.
  EXPECT_GT(p_loss_given_loss, 0.5);
}

TEST(Outage, DisabledNeverFires) {
  const ImpairmentSpec spec;
  for (int s = 0; s < 100; ++s) {
    EXPECT_FALSE(in_outage(spec, 42, SimTime::seconds(s)));
  }
}

TEST(Outage, DeterministicAndRngFree) {
  ImpairmentSpec spec;
  spec.outage_per_s = 0.1;  // one 200 ms window per 10 s epoch
  bool any_down = false, any_up = false;
  for (int ms = 0; ms < 60000; ms += 10) {
    const bool down = in_outage(spec, 7, SimTime::millis(ms));
    EXPECT_EQ(down, in_outage(spec, 7, SimTime::millis(ms)));  // replayable
    any_down |= down;
    any_up |= !down;
  }
  EXPECT_TRUE(any_down);
  EXPECT_TRUE(any_up);
}

TEST(Outage, DistinctLinksGetDistinctSchedules) {
  ImpairmentSpec spec;
  spec.outage_per_s = 0.2;
  int differing = 0;
  for (int ms = 0; ms < 60000; ms += 10) {
    if (in_outage(spec, 1, SimTime::millis(ms)) !=
        in_outage(spec, 2, SimTime::millis(ms))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(Outage, DutyCycleMatchesConfiguredRate) {
  ImpairmentSpec spec;
  spec.outage_per_s = 0.5;  // 200 ms down per 2 s epoch -> 10% downtime
  int down = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (in_outage(spec, 11, SimTime::millis(i))) ++down;
  }
  const double duty = static_cast<double>(down) / kSamples;
  EXPECT_NEAR(duty, 0.10, 0.03);
}

TEST(Outage, WindowLongerThanEpochIsAlwaysDown) {
  ImpairmentSpec spec;
  spec.outage_per_s = 10.0;                       // 100 ms epochs
  spec.outage_duration = SimTime::millis(500);    // longer than the epoch
  for (int ms = 0; ms < 5000; ms += 7) {
    EXPECT_TRUE(in_outage(spec, 3, SimTime::millis(ms)));
  }
}

}  // namespace
}  // namespace peerscope::sim
