#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace peerscope::sim {
namespace {

using util::SimTime;

TEST(LinkCursor, IdleLinkStartsImmediately) {
  LinkCursor link;
  const SimTime start = link.reserve(SimTime::millis(5), SimTime::millis(2));
  EXPECT_EQ(start, SimTime::millis(5));
  EXPECT_EQ(link.busy_until(), SimTime::millis(7));
}

TEST(LinkCursor, BusyLinkQueues) {
  LinkCursor link;
  link.reserve(SimTime::millis(0), SimTime::millis(10));
  const SimTime start = link.reserve(SimTime::millis(2), SimTime::millis(3));
  EXPECT_EQ(start, SimTime::millis(10));
  EXPECT_EQ(link.busy_until(), SimTime::millis(13));
}

TEST(LinkCursor, LateArrivalAfterIdleGap) {
  LinkCursor link;
  link.reserve(SimTime::millis(0), SimTime::millis(1));
  const SimTime start = link.reserve(SimTime::millis(50), SimTime::millis(1));
  EXPECT_EQ(start, SimTime::millis(50));
}

TEST(LinkCursor, BacklogRelativeToNow) {
  LinkCursor link;
  link.reserve(SimTime::zero(), SimTime::millis(10));
  EXPECT_EQ(link.backlog(SimTime::millis(4)), SimTime::millis(6));
  EXPECT_EQ(link.backlog(SimTime::millis(10)), SimTime::zero());
  EXPECT_EQ(link.backlog(SimTime::millis(99)), SimTime::zero());
}

TEST(LinkCursor, BusyTimeAccumulates) {
  LinkCursor link;
  link.reserve(SimTime::zero(), SimTime::millis(3));
  link.reserve(SimTime::millis(100), SimTime::millis(4));
  EXPECT_EQ(link.busy_time(), SimTime::millis(7));
}

TEST(LinkCursor, FifoOrderPreserved) {
  LinkCursor link;
  const SimTime a = link.reserve(SimTime::millis(5), SimTime::millis(1));
  // An "earlier" reservation made later still queues behind.
  const SimTime b = link.reserve(SimTime::millis(1), SimTime::millis(1));
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace peerscope::sim
