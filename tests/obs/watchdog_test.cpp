#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/cancel.hpp"

namespace peerscope::obs {
namespace {

using std::chrono::milliseconds;

SloSpec fast_spec() {
  SloSpec slo;
  slo.poll = milliseconds{5};
  slo.sustain = 2;
  return slo;
}

/// Waits up to `deadline` for the watchdog to trip; returns whether
/// it did. Polling keeps the tests fast on loaded machines without
/// hard-coding sleeps sized to the worst case.
bool wait_for_trip(const Watchdog& dog,
                   milliseconds deadline = milliseconds{2'000}) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (dog.tripped()) return true;
    std::this_thread::sleep_for(milliseconds{2});
  }
  return dog.tripped();
}

TEST(SloSpec, EnabledOnlyWhenAnObjectiveIsSet) {
  SloSpec slo;
  EXPECT_FALSE(slo.enabled());
  slo.events_per_s_floor = 1.0;
  EXPECT_TRUE(slo.enabled());
  slo = SloSpec{};
  slo.stall_window_s = 1.0;
  EXPECT_TRUE(slo.enabled());
  slo = SloSpec{};
  slo.rejoin_p99_ceiling_ns = 1;
  EXPECT_TRUE(slo.enabled());
}

TEST(Watchdog, NeverTripsWhileProgressIsInactive) {
  SloSpec slo = fast_spec();
  slo.events_per_s_floor = 1e12;  // would trip instantly if judged
  RunProgress progress;           // active stays false
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  std::this_thread::sleep_for(milliseconds{60});
  dog.stop();
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, TripsOnSustainedEventRateFloorViolation) {
  SloSpec slo = fast_spec();
  slo.events_per_s_floor = 1e12;
  RunProgress progress;
  progress.active.store(true);
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  // Events advance, but far below the absurd floor.
  for (int i = 0; i < 200 && !dog.tripped(); ++i) {
    progress.events.fetch_add(10);
    progress.sim_time_ns.fetch_add(1'000'000);
    std::this_thread::sleep_for(milliseconds{2});
  }
  ASSERT_TRUE(wait_for_trip(dog));
  dog.stop();
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(dog.reason().find("below floor"), std::string::npos)
      << dog.reason();
}

TEST(Watchdog, TripsWhenSimTimeStalls) {
  SloSpec slo;
  slo.poll = milliseconds{5};
  slo.stall_window_s = 0.03;
  RunProgress progress;
  progress.active.store(true);
  progress.sim_time_ns.store(42);  // frozen forever
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  ASSERT_TRUE(wait_for_trip(dog));
  dog.stop();
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(dog.reason().find("stalled"), std::string::npos) << dog.reason();
}

TEST(Watchdog, AdvancingSimTimeDefeatsTheStallObjective) {
  SloSpec slo;
  slo.poll = milliseconds{5};
  // Window far past the test's lifetime: even a scheduler hiccup
  // between the fetch_adds below cannot reach it, so a false trip
  // here is a real bug, not test flake.
  slo.stall_window_s = 30.0;
  RunProgress progress;
  progress.active.store(true);
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  for (int i = 0; i < 40; ++i) {
    progress.sim_time_ns.fetch_add(1'000);
    std::this_thread::sleep_for(milliseconds{2});
  }
  dog.stop();
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, TripsOnRejoinLatencyCeiling) {
  SloSpec slo = fast_spec();
  slo.rejoin_p99_ceiling_ns = 1'000'000;  // 1 ms
  RunProgress progress;
  progress.active.store(true);
  progress.rejoin_p99_ns.store(50'000'000);  // 50 ms observed
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  ASSERT_TRUE(wait_for_trip(dog));
  dog.stop();
  EXPECT_TRUE(token.cancelled());
  EXPECT_NE(dog.reason().find("rejoin"), std::string::npos) << dog.reason();
}

TEST(Watchdog, UnknownRejoinP99StaysInnocent) {
  // -1 means "no rejoin completed yet": not a violation.
  SloSpec slo = fast_spec();
  slo.rejoin_p99_ceiling_ns = 1;
  RunProgress progress;
  progress.active.store(true);  // rejoin_p99_ns stays -1
  util::CancelToken token;
  Watchdog dog{slo, &progress, &token};
  std::this_thread::sleep_for(milliseconds{60});
  dog.stop();
  EXPECT_FALSE(dog.tripped());
}

TEST(RunProgress, ResetClearsEverything) {
  RunProgress progress;
  progress.events.store(9);
  progress.sim_time_ns.store(9);
  progress.rejoin_p99_ns.store(9);
  progress.active.store(true);
  progress.reset();
  EXPECT_EQ(progress.events.load(), 0u);
  EXPECT_EQ(progress.sim_time_ns.load(), 0);
  EXPECT_EQ(progress.rejoin_p99_ns.load(), -1);
  EXPECT_FALSE(progress.active.load());
}

}  // namespace
}  // namespace peerscope::obs
