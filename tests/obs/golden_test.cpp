// Golden determinism tests for the metrics sidecar and the event
// tracer: the deterministic rendering of a fixed-seed run must be
// byte-identical across repeated invocations and across thread-pool
// sizes (DESIGN.md §9, §12).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace peerscope::obs {
namespace {

const net::AsTopology& topo() {
  static const net::AsTopology t = net::make_reference_topology();
  return t;
}

std::vector<exp::RunSpec> fixed_specs() {
  std::vector<exp::RunSpec> specs;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    exp::RunSpec spec;
    spec.profile = p2p::SystemProfile::tvants();
    spec.profile.population.background_peers = 120;
    spec.seed = seed;
    spec.duration = util::SimTime::seconds(15);
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Runs the fixed-seed experiment set under a fresh registry and
/// returns the deterministic sidecar rendering.
std::string run_and_render(std::size_t workers) {
  MetricsRegistry reg;
  install(&reg);
  const auto specs = fixed_specs();
  util::ThreadPool pool{workers};
  const auto results = exp::run_experiments(topo(), specs, pool);
  install(nullptr);
  EXPECT_EQ(results.size(), specs.size());
  return deterministic_json(reg.snapshot());
}

TEST(MetricsGolden, StableAcrossRepeatedInvocations) {
  const std::string first = run_and_render(2);
  const std::string second = run_and_render(2);
  EXPECT_EQ(first, second);
}

TEST(MetricsGolden, IndependentOfWorkerCount) {
  const std::string serial = run_and_render(1);
  const std::string parallel = run_and_render(3);
  EXPECT_EQ(serial, parallel);
}

TEST(MetricsGolden, SidecarCoversTheWholePipeline) {
  const std::string json = run_and_render(2);
  // One representative counter per instrumented subsystem: the sidecar
  // is end-to-end or it is not a run summary.
  for (const char* key :
       {"\"sim.packets_generated\"", "\"sim.trains_expanded\"",
        "\"sim.events_executed\"", "\"p2p.chunks_delivered\"",
        "\"p2p.contacts\"", "\"trace.packets_captured\"",
        "\"aware.observations_extracted\"", "\"aware.ipg_samples\"",
        "\"exp.experiments_run\"", "\"run.TVAnts\"",
        "\"run.TVAnts/simulate\"", "\"run.TVAnts/extract\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Gauges are configuration facts and must stay out.
  EXPECT_EQ(json.find("exp.pool_workers"), std::string::npos);
}

/// Runs the fixed-seed experiment set under a fresh recorder and
/// returns the deterministic trace rendering. Every run flushes its
/// own ring at run end (exp::run_experiment), so by the time the pool
/// is drained the drained store holds everything.
std::string run_and_render_trace(std::size_t workers,
                                 std::size_t ring_capacity) {
  TraceConfig config;
  config.ring_capacity = ring_capacity;
  TraceRecorder recorder{config};
  install_tracer(&recorder);
  const auto specs = fixed_specs();
  util::ThreadPool pool{workers};
  const auto results = exp::run_experiments(topo(), specs, pool);
  install_tracer(nullptr);
  EXPECT_EQ(results.size(), specs.size());
  return deterministic_trace(recorder.snapshot());
}

TEST(TraceGolden, StableAcrossRepeatedInvocations) {
  const std::string first = run_and_render_trace(2, std::size_t{1} << 15);
  const std::string second = run_and_render_trace(2, std::size_t{1} << 15);
  EXPECT_EQ(first, second);
}

TEST(TraceGolden, IndependentOfWorkerCount) {
  const std::string serial = run_and_render_trace(1, std::size_t{1} << 15);
  const std::string parallel = run_and_render_trace(3, std::size_t{1} << 15);
  EXPECT_EQ(serial, parallel);
  // The rendering is a real timeline, not an empty shell.
  EXPECT_NE(serial.find("span run.TVAnts/simulate begin 3 end 3"),
            std::string::npos)
      << serial;
  EXPECT_NE(serial.find("instant p2p.swarm_complete count 3"),
            std::string::npos)
      << serial;
  EXPECT_NE(serial.find("counter p2p.chunks_delivered"), std::string::npos);
  EXPECT_NE(serial.find("dropped 0\n"), std::string::npos);
}

TEST(TraceGolden, OverflowingRingStaysWorkerCountIndependent) {
  // A ring far too small for a run: most events are overwritten. The
  // drop count and the surviving tail are still per-run properties
  // (flush at run end), so the rendering must not notice pool size.
  const std::string serial = run_and_render_trace(1, 8);
  const std::string parallel = run_and_render_trace(3, 8);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.find("dropped 0\n"), std::string::npos)
      << "expected drops with an 8-slot ring:\n"
      << serial;
}

TEST(MetricsGolden, WrittenFileMatchesRendering) {
  MetricsRegistry reg;
  install(&reg);
  counter("file.counter").add(7);
  install(nullptr);

  const auto path = std::filesystem::path{::testing::TempDir()} /
                    "peerscope_metrics_golden.json";
  write_metrics_json(path, reg.snapshot(), /*deterministic=*/true);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::filesystem::remove(path);
  EXPECT_EQ(buf.str(), deterministic_json(reg.snapshot()));
}

}  // namespace
}  // namespace peerscope::obs
