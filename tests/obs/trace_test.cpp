#include "obs/trace.hpp"

// This suite exercises the recorder API with synthetic event names on
// purpose — they must NOT go into src/obs/trace_names.def.
// peerscope-lint: allow-file(metric-name-registry)

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_summary.hpp"
#include "util/atomic_file.hpp"

namespace peerscope::obs {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::path{::testing::TempDir()} / name;
}

/// Installs a recorder for the test body and guarantees uninstall even
/// when an assertion fails mid-test.
class InstalledTracer {
 public:
  explicit InstalledTracer(TraceRecorder& recorder) {
    install_tracer(&recorder);
  }
  ~InstalledTracer() { install_tracer(nullptr); }
  InstalledTracer(const InstalledTracer&) = delete;
  InstalledTracer& operator=(const InstalledTracer&) = delete;
};

TEST(TraceHooks, AreNoOpsWithoutARecorder) {
  install_tracer(nullptr);
  EXPECT_FALSE(trace_enabled());
  trace_instant("nobody.listening");
  trace_counter("nobody.counting", 7);
  trace_flush();
  PEERSCOPE_TRACE_INSTANT("nobody.listening");
  PEERSCOPE_TRACE_COUNTER("nobody.counting", 7);
  { Span span{"nobody"}; }
  // Nothing to assert beyond "did not crash": the contract is that the
  // hooks touch no recorder state when none is installed.
}

TEST(TraceRecorderTest, RecordsEventsInOrderWithTypesAndValues) {
  TraceRecorder recorder;
  InstalledTracer installed{recorder};
  recorder.begin("phase.a");
  trace_instant("tick");
  trace_counter("gauge", 42);
  recorder.end("phase.a");
  const TraceSnapshot snap = recorder.snapshot();

  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.events[0].name, "phase.a");
  EXPECT_EQ(snap.events[0].type, TraceEventType::kBegin);
  EXPECT_EQ(snap.events[1].name, "tick");
  EXPECT_EQ(snap.events[1].type, TraceEventType::kInstant);
  EXPECT_EQ(snap.events[2].name, "gauge");
  EXPECT_EQ(snap.events[2].type, TraceEventType::kCounter);
  EXPECT_EQ(snap.events[2].value, 42);
  EXPECT_EQ(snap.events[3].name, "phase.a");
  EXPECT_EQ(snap.events[3].type, TraceEventType::kEnd);
  for (const TraceEvent& event : snap.events) {
    EXPECT_EQ(event.tid, 0u);
    EXPECT_GE(event.ts_ns, 0);
  }
  // Timestamps are monotone within a thread.
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].ts_ns, snap.events[i].ts_ns);
  }
}

TEST(TraceRecorderTest, SpanEmitsFullPathBeginAndEnd) {
  TraceRecorder recorder;
  InstalledTracer installed{recorder};
  {
    Span outer{"run.App"};
    Span inner{"simulate"};
  }
  const TraceSnapshot snap = recorder.snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.events[0].name, "run.App");
  EXPECT_EQ(snap.events[0].type, TraceEventType::kBegin);
  EXPECT_EQ(snap.events[1].name, "run.App/simulate");
  EXPECT_EQ(snap.events[1].type, TraceEventType::kBegin);
  EXPECT_EQ(snap.events[2].name, "run.App/simulate");
  EXPECT_EQ(snap.events[2].type, TraceEventType::kEnd);
  EXPECT_EQ(snap.events[3].name, "run.App");
  EXPECT_EQ(snap.events[3].type, TraceEventType::kEnd);
}

TEST(TraceRecorderTest, OverflowKeepsNewestTailAndCountsDrops) {
  TraceConfig config;
  config.ring_capacity = 4;
  TraceRecorder recorder{config};
  InstalledTracer installed{recorder};
  for (int i = 0; i < 10; ++i) {
    trace_counter("tick", i);
  }
  const TraceSnapshot snap = recorder.snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 6u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.events[static_cast<std::size_t>(i)].value, 6 + i);
  }
}

TEST(TraceRecorderTest, RecentEventsReturnsNewestTailOldestFirst) {
  TraceConfig config;
  config.ring_capacity = 4;
  TraceRecorder recorder{config};
  InstalledTracer installed{recorder};
  for (int i = 0; i < 10; ++i) {
    trace_counter("tick", i);
  }
  const std::vector<TraceEvent> tail = recorder.recent_events(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].value, 7);
  EXPECT_EQ(tail[1].value, 8);
  EXPECT_EQ(tail[2].value, 9);
  // Asking for more than the ring retains returns the whole ring.
  EXPECT_EQ(recorder.recent_events(100).size(), 4u);
  // A thread that never recorded has no tail.
  std::thread([&recorder] {
    EXPECT_TRUE(recorder.recent_events(8).empty());
  }).join();
}

TEST(TraceRecorderTest, FlushedThreadsKeepDistinctTids) {
  TraceRecorder recorder;
  InstalledTracer installed{recorder};
  trace_instant("main.tick");
  trace_flush();
  std::thread([] {
    trace_instant("worker.tick");
    trace_flush();
  }).join();
  const TraceSnapshot snap = recorder.snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].name, "main.tick");
  EXPECT_EQ(snap.events[1].name, "worker.tick");
  EXPECT_NE(snap.events[0].tid, snap.events[1].tid);
}

TEST(TraceRecorderTest, ReinstallNeverLeaksEventsAcrossRecorders) {
  TraceRecorder first;
  install_tracer(&first);
  trace_instant("for.first");
  install_tracer(nullptr);

  TraceRecorder second;
  install_tracer(&second);
  trace_instant("for.second");
  install_tracer(nullptr);

  const TraceSnapshot snap_first = first.snapshot();
  ASSERT_EQ(snap_first.events.size(), 1u);
  EXPECT_EQ(snap_first.events[0].name, "for.first");
  const TraceSnapshot snap_second = second.snapshot();
  ASSERT_EQ(snap_second.events.size(), 1u);
  EXPECT_EQ(snap_second.events[0].name, "for.second");
}

TEST(TraceRecorderTest, DropsAreMirroredIntoTheMetricsSidecar) {
  MetricsRegistry registry;
  install(&registry);
  TraceConfig config;
  config.ring_capacity = 2;
  TraceRecorder recorder{config};
  {
    InstalledTracer installed{recorder};
    for (int i = 0; i < 7; ++i) trace_instant("spam");
    trace_flush();
  }
  install(nullptr);
  const auto snap = registry.snapshot();
  ASSERT_TRUE(snap.counters.contains("obs.trace_events_dropped"));
  EXPECT_EQ(snap.counters.at("obs.trace_events_dropped"), 5u);
}

TEST(TraceRecorderTest, DropFreeFlushLeavesMetricsUntouched) {
  // The byte-identity half of the contract: a traced run that loses
  // nothing must not add keys to metrics.json.
  MetricsRegistry registry;
  install(&registry);
  TraceRecorder recorder;
  {
    InstalledTracer installed{recorder};
    trace_instant("calm");
    trace_flush();
  }
  install(nullptr);
  const auto snap = registry.snapshot();
  EXPECT_FALSE(snap.counters.contains("obs.trace_events_dropped"));
}

// ---------------------------------------------------------------------
// trace.json writer + trace_summary reader

TraceSnapshot sample_snapshot() {
  TraceSnapshot snap;
  snap.dropped = 3;
  snap.events.push_back({"run.App", TraceEventType::kBegin, 0, 1'000, 0});
  snap.events.push_back(
      {"run.App/simulate", TraceEventType::kBegin, 0, 2'500, 0});
  snap.events.push_back({"quo\"te\\path", TraceEventType::kInstant, 0,
                         3'141, 0});
  snap.events.push_back({"chunks", TraceEventType::kCounter, 0, 4'000, -17});
  snap.events.push_back(
      {"run.App/simulate", TraceEventType::kEnd, 0, 5'000, 0});
  snap.events.push_back({"run.App", TraceEventType::kEnd, 1, 9'000, 0});
  return snap;
}

TEST(TraceJson, RoundTripsThroughTheSummaryReader) {
  const TraceSnapshot snap = sample_snapshot();
  const auto path = temp_path("peerscope_trace_roundtrip.json");
  write_trace_json(path, snap);
  const TraceFile file = read_trace_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(file.schema, "peerscope.trace/1");
  EXPECT_EQ(file.dropped, 3u);
  EXPECT_EQ(file.skipped_lines, 0u);
  ASSERT_EQ(file.events.size(), snap.events.size());
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(file.events[i].name, snap.events[i].name) << i;
    EXPECT_EQ(file.events[i].type, snap.events[i].type) << i;
    EXPECT_EQ(file.events[i].tid, snap.events[i].tid) << i;
    EXPECT_EQ(file.events[i].ts_ns, snap.events[i].ts_ns) << i;
    EXPECT_EQ(file.events[i].value, snap.events[i].value) << i;
  }
}

TEST(TraceJson, DeterministicRenderingMatchesInMemoryTrace) {
  const TraceSnapshot snap = sample_snapshot();
  const auto path = temp_path("peerscope_trace_deterministic.json");
  write_trace_json(path, snap);
  const TraceFile file = read_trace_file(path);
  std::filesystem::remove(path);
  EXPECT_EQ(deterministic_rendering(file), deterministic_trace(snap));
}

TEST(TraceJson, TornTailIsSalvagedNotFatal) {
  const TraceSnapshot snap = sample_snapshot();
  const std::string full = trace_json(snap);
  // Cut mid-way through the last event line: the victim line loses its
  // closing brace and the file loses its footer.
  const auto last_line = full.rfind("\n{");
  ASSERT_NE(last_line, std::string::npos);
  const std::string torn = full.substr(0, last_line + 10);

  const auto path = temp_path("peerscope_trace_torn.json");
  util::write_file_atomic(path, torn);
  const TraceFile file = read_trace_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(file.schema, "peerscope.trace/1");
  EXPECT_EQ(file.dropped, 3u);
  EXPECT_EQ(file.skipped_lines, 1u);
  EXPECT_EQ(file.events.size(), snap.events.size() - 1);
}

TEST(TraceJson, WrongSchemaIsAnError) {
  const auto path = temp_path("peerscope_trace_badschema.json");
  util::write_file_atomic(
      path, "{\"schema\": \"peerscope.metrics/1\",\n\"traceEvents\": [\n]}\n");
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(read_trace_file(temp_path("peerscope_no_such_trace.json")),
               std::runtime_error);
}

TEST(TraceJson, EventLinesAreSelfContainedJsonObjects) {
  // One event per line is what makes torn tails line-local; check the
  // shape rather than trusting the writer comment.
  const std::string json = trace_json(sample_snapshot());
  std::size_t event_lines = 0;
  std::size_t start = 0;
  while (start < json.size()) {
    auto end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    std::string line = json.substr(start, end - start);
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.rfind("{\"name\"", 0) == 0) {
      ++event_lines;
      EXPECT_EQ(line.back(), '}') << line;
    }
    start = end + 1;
  }
  EXPECT_EQ(event_lines, sample_snapshot().events.size());
}

// ---------------------------------------------------------------------
// Wall-time attribution

TEST(AttributeSpans, ComputesTotalAndSelfAcrossNesting) {
  std::vector<TraceEvent> events;
  events.push_back({"run.A", TraceEventType::kBegin, 0, 0, 0});
  events.push_back({"run.A/sim", TraceEventType::kBegin, 0, 100, 0});
  events.push_back({"run.A/sim", TraceEventType::kEnd, 0, 400, 0});
  events.push_back({"run.A/extract", TraceEventType::kBegin, 0, 500, 0});
  events.push_back({"run.A/extract", TraceEventType::kEnd, 0, 600, 0});
  events.push_back({"run.A", TraceEventType::kEnd, 0, 1'000, 0});

  const auto rows = attribute_spans(events);
  ASSERT_EQ(rows.size(), 3u);  // sorted by path
  EXPECT_EQ(rows[0].path, "run.A");
  EXPECT_EQ(rows[0].app, "run.A");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[0].total_ns, 1'000);
  EXPECT_EQ(rows[0].self_ns, 600);  // 1000 - (300 + 100) nested
  EXPECT_EQ(rows[1].path, "run.A/extract");
  EXPECT_EQ(rows[1].app, "run.A");
  EXPECT_EQ(rows[1].total_ns, 100);
  EXPECT_EQ(rows[1].self_ns, 100);
  EXPECT_EQ(rows[2].path, "run.A/sim");
  EXPECT_EQ(rows[2].total_ns, 300);
  EXPECT_EQ(rows[2].self_ns, 300);
}

TEST(AttributeSpans, UnmatchedEventsAreDiscardedWithoutPoisoning) {
  std::vector<TraceEvent> events;
  // An end whose begin fell out of a wrapped ring…
  events.push_back({"run.lost", TraceEventType::kEnd, 0, 50, 0});
  // …a begin whose run died before ending…
  events.push_back({"run.dead", TraceEventType::kBegin, 0, 60, 0});
  // …and a healthy pair around them.
  events.push_back({"run.ok", TraceEventType::kBegin, 0, 100, 0});
  events.push_back({"run.ok", TraceEventType::kEnd, 0, 300, 0});

  const auto rows = attribute_spans(events);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].path, "run.ok");
  EXPECT_EQ(rows[0].total_ns, 200);
}

TEST(AttributeSpans, ThreadsAttributeIndependently) {
  std::vector<TraceEvent> events;
  events.push_back({"run.x", TraceEventType::kBegin, 0, 0, 0});
  events.push_back({"run.y", TraceEventType::kBegin, 1, 10, 0});
  events.push_back({"run.y", TraceEventType::kEnd, 1, 110, 0});
  events.push_back({"run.x", TraceEventType::kEnd, 0, 500, 0});

  const auto rows = attribute_spans(events);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].path, "run.x");
  EXPECT_EQ(rows[0].total_ns, 500);
  EXPECT_EQ(rows[0].self_ns, 500);  // run.y is another thread, not a child
  EXPECT_EQ(rows[1].path, "run.y");
  EXPECT_EQ(rows[1].total_ns, 100);
}

TEST(RenderTraceSummary, PrintsRankedRowsAndRespectsTopN) {
  std::vector<SpanAttribution> rows;
  rows.push_back({"run.A/sim", "run.A", 2, 3'000'000, 2'500'000});
  rows.push_back({"run.A", "run.A", 1, 4'000'000, 1'000'000});
  rows.push_back({"run.A/extract", "run.A", 1, 500'000, 500'000});

  const std::string table = render_trace_summary(rows, 2);
  EXPECT_NE(table.find("self ms"), std::string::npos);
  EXPECT_NE(table.find("run.A/sim"), std::string::npos);
  EXPECT_NE(table.find("run.A"), std::string::npos);
  // Third row falls off at top_n = 2.
  EXPECT_EQ(table.find("run.A/extract"), std::string::npos);
  // Biggest self time (2.500 ms) is ranked above the smaller (1.000).
  EXPECT_LT(table.find("2.500"), table.find("1.000"));
}

TEST(RenderTraceSummary, EmptyInputStillRendersAHeader) {
  const std::string table = render_trace_summary({}, 10);
  EXPECT_NE(table.find("app"), std::string::npos);
  EXPECT_NE(table.find("self %"), std::string::npos);
}

}  // namespace
}  // namespace peerscope::obs
