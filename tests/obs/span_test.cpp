#include "obs/span.hpp"

// This suite exercises span nesting with synthetic span names on
// purpose — they must NOT go into src/obs/metric_names.def.
// peerscope-lint: allow-file(metric-name-registry)

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.hpp"

namespace peerscope::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override { install(&registry_); }
  void TearDown() override { install(nullptr); }

  MetricsRegistry registry_;
};

TEST_F(SpanTest, NestingJoinsPathsWithSlash) {
  {
    Span outer{"outer"};
    Span inner{"inner"};
  }
  const auto snap = registry_.snapshot();
  ASSERT_TRUE(snap.spans.contains("outer"));
  ASSERT_TRUE(snap.spans.contains("outer/inner"));
  EXPECT_FALSE(snap.spans.contains("inner"));
  EXPECT_EQ(snap.spans.at("outer").count, 1u);
  EXPECT_EQ(snap.spans.at("outer/inner").count, 1u);
}

TEST_F(SpanTest, RepeatedSpansAccumulateCount) {
  for (int i = 0; i < 5; ++i) {
    PEERSCOPE_SPAN("loop");
  }
  EXPECT_EQ(registry_.snapshot().spans.at("loop").count, 5u);
}

TEST_F(SpanTest, StatsAreInternallyConsistent) {
  for (int i = 0; i < 3; ++i) {
    Span span{"timed"};
  }
  const SpanStats s = registry_.snapshot().spans.at("timed");
  ASSERT_EQ(s.count, 3u);
  EXPECT_GE(s.min_ns, 0);
  EXPECT_LE(s.min_ns, s.max_ns);
  EXPECT_GE(s.total_ns, static_cast<std::int64_t>(s.count) * s.min_ns);
  EXPECT_LE(s.total_ns, static_cast<std::int64_t>(s.count) * s.max_ns);
}

TEST_F(SpanTest, ParentDurationCoversChild) {
  // Parent starts before and ends after the child on the same clock,
  // so its recorded duration can never be smaller.
  {
    Span parent{"p"};
    Span child{"c"};
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto snap = registry_.snapshot();
  EXPECT_GE(snap.spans.at("p").total_ns, snap.spans.at("p/c").total_ns);
  EXPECT_GT(snap.spans.at("p/c").total_ns, 0);
}

TEST_F(SpanTest, ThreadsKeepIndependentStacks) {
  Span outer{"main_outer"};
  std::thread worker([] {
    Span span{"worker_span"};
  });
  worker.join();
  const auto snap = registry_.snapshot();
  // The worker's span must not pick up this thread's nesting.
  EXPECT_TRUE(snap.spans.contains("worker_span"));
  EXPECT_FALSE(snap.spans.contains("main_outer/worker_span"));
}

TEST(SpanNoRegistry, RecordsNothing) {
  ASSERT_EQ(registry(), nullptr);
  {
    Span span{"nobody_listening"};
    PEERSCOPE_SPAN("also_ignored");
  }
  // Installing afterwards must show an empty span table: the spans
  // above resolved the registry at construction time.
  MetricsRegistry reg;
  install(&reg);
  const auto snap = reg.snapshot();
  install(nullptr);
  EXPECT_TRUE(snap.spans.empty());
}

TEST(SpanNoRegistry, RegistryInstalledMidSpanIsIgnored) {
  MetricsRegistry reg;
  {
    Span span{"started_before_install"};
    install(&reg);
  }
  const auto snap = reg.snapshot();
  install(nullptr);
  // The span bound to the (null) registry at construction; recording
  // into a registry it never pushed a stack entry for would corrupt
  // the nesting.
  EXPECT_TRUE(snap.spans.empty());
}

}  // namespace
}  // namespace peerscope::obs
