#include "obs/metrics.hpp"

// This suite exercises the registry API with synthetic metric names on
// purpose — they must NOT go into src/obs/metric_names.def.
// peerscope-lint: allow-file(metric-name-registry)

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace peerscope::obs {
namespace {

/// Installs a fresh registry for each test and guarantees uninstall
/// even when an assertion fails mid-test.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { install(&registry_); }
  void TearDown() override { install(nullptr); }

  MetricsRegistry registry_;
};

TEST_F(MetricsTest, CounterAccumulates) {
  counter("a").add();
  counter("a").add(41);
  const auto snap = registry_.snapshot();
  ASSERT_TRUE(snap.counters.contains("a"));
  EXPECT_EQ(snap.counters.at("a"), 42u);
}

TEST_F(MetricsTest, RegistrationAloneCreatesZeroKey) {
  // Resolving a handle must create the key even if nothing is added:
  // the sidecar's key set depends on which code paths ran, not on
  // whether they had work.
  (void)counter("touched_but_zero");
  const auto snap = registry_.snapshot();
  ASSERT_TRUE(snap.counters.contains("touched_but_zero"));
  EXPECT_EQ(snap.counters.at("touched_but_zero"), 0u);
}

// The shard-and-merge contract: the merged total is a pure function of
// the deltas added, independent of how many threads added them.
TEST_F(MetricsTest, CounterMergeIsWriterCountIndependent) {
  constexpr std::uint64_t kTotal = 96'000;

  counter("one_writer").add(kTotal);

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      const Counter c = counter("many_writers");
      for (std::uint64_t i = 0; i < kTotal / kThreads; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = registry_.snapshot();
  EXPECT_EQ(snap.counters.at("one_writer"), kTotal);
  EXPECT_EQ(snap.counters.at("many_writers"), kTotal);
}

TEST_F(MetricsTest, HistogramBucketsCountAndSum) {
  const std::int64_t bounds[] = {10, 100, 1000};
  const Histogram h = histogram("h", bounds);
  for (std::int64_t v : {5, 10, 11, 100, 500, 5000}) h.observe(v);

  const auto snap = registry_.snapshot();
  const auto& hs = snap.histograms.at("h");
  ASSERT_EQ(hs.bounds, (std::vector<std::int64_t>{10, 100, 1000}));
  // <=10: {5,10}; <=100: {11,100}; <=1000: {500}; overflow: {5000}.
  ASSERT_EQ(hs.buckets, (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(hs.count, 6u);
  EXPECT_EQ(hs.sum, 5 + 10 + 11 + 100 + 500 + 5000);
  EXPECT_FALSE(hs.timing);
}

TEST_F(MetricsTest, HistogramMergeIsWriterCountIndependent) {
  static constexpr std::int64_t kBounds[] = {8, 64, 512};
  constexpr std::int64_t kThreads = 6;
  constexpr std::int64_t kPerThread = 4000;

  const Histogram serial_h = histogram("serial", kBounds);
  for (std::int64_t i = 0; i < kThreads * kPerThread; ++i) {
    serial_h.observe(i % 700);
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::int64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const Histogram h = histogram("sharded", kBounds);
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        h.observe((t * kPerThread + i) % 700);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = registry_.snapshot();
  const auto& serial = snap.histograms.at("serial");
  const auto& sharded = snap.histograms.at("sharded");
  EXPECT_EQ(serial.buckets, sharded.buckets);
  EXPECT_EQ(serial.count, sharded.count);
  EXPECT_EQ(serial.sum, sharded.sum);
}

TEST_F(MetricsTest, HistogramBoundsFixedAtFirstRegistration) {
  const std::int64_t first[] = {1, 2};
  const std::int64_t other[] = {7, 8, 9};
  (void)histogram("fixed", first);
  histogram("fixed", other).observe(5);
  const auto snap = registry_.snapshot();
  EXPECT_EQ(snap.histograms.at("fixed").bounds,
            (std::vector<std::int64_t>{1, 2}));
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  set_gauge("g", 1.0);
  set_gauge("g", 4.5);
  const auto snap = registry_.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 4.5);
}

TEST_F(MetricsTest, MacroRecordsThroughInstalledRegistry) {
  PEERSCOPE_METRIC_INC("macro");
  PEERSCOPE_METRIC_ADD("macro", 2);
  EXPECT_EQ(registry_.snapshot().counters.at("macro"), 3u);
}

TEST(MetricsNoRegistry, EverythingIsANoOp) {
  ASSERT_EQ(registry(), nullptr);
  EXPECT_FALSE(enabled());
  const Counter c = counter("ignored");
  EXPECT_FALSE(static_cast<bool>(c));
  c.add(7);  // must not crash
  const std::int64_t bounds[] = {1};
  const Histogram h = histogram("ignored", bounds);
  EXPECT_FALSE(static_cast<bool>(h));
  h.observe(3);  // must not crash
  set_gauge("ignored", 1.0);
  PEERSCOPE_METRIC_INC("ignored");
}

TEST(MetricsNoRegistry, DefaultBoundsAreSortedAndNonEmpty) {
  for (auto bounds : {timing_bounds(), size_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST_F(MetricsTest, DeterministicJsonExcludesGaugesAndTimingValues) {
  counter("c").add(3);
  set_gauge("workers", 8.0);
  histogram("wall_ns", timing_bounds(), /*timing=*/true).observe(1234);
  const std::int64_t bounds[] = {10};
  histogram("sizes", bounds).observe(4);

  const std::string det = deterministic_json(registry_.snapshot());
  EXPECT_EQ(det.find("workers"), std::string::npos);
  EXPECT_EQ(det.find("1234"), std::string::npos);
  EXPECT_NE(det.find("\"c\""), std::string::npos);
  EXPECT_NE(det.find("\"sizes\""), std::string::npos);
  // Timing histograms keep their key (stable key set) but no values.
  EXPECT_NE(det.find("\"wall_ns\""), std::string::npos);

  const std::string full = to_json(registry_.snapshot());
  EXPECT_NE(full.find("workers"), std::string::npos);
}

}  // namespace
}  // namespace peerscope::obs
