#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

namespace peerscope::obs {
namespace {

using util::SimTime;

// ---------------------------------------------------------------- //
// LogHistogram

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::int64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LogHistogram::bucket_floor(LogHistogram::bucket_index(v)), v);
    EXPECT_EQ(LogHistogram::bucket_width(LogHistogram::bucket_index(v)), 1);
    h.record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.sum(), 63 * 64 / 2);
  // With exact unit buckets the quantile is the exact sample quantile.
  EXPECT_EQ(h.quantile(0.5), 31);
  EXPECT_EQ(h.quantile(1.0), 63);
  EXPECT_EQ(h.quantile(0.0), 0);
}

TEST(LogHistogram, BucketEdgesAreConsistent) {
  // Every probe value must land inside [floor, floor + width) of its
  // own bucket, and bucket indexes must be monotone in the value.
  std::uint32_t prev_index = 0;
  for (std::int64_t v : {0L, 1L, 63L, 64L, 65L, 127L, 128L, 1000L, 4095L,
                         4096L, 1'000'000L, 123'456'789L,
                         9'000'000'000'000L}) {
    const std::uint32_t index = LogHistogram::bucket_index(v);
    EXPECT_GE(index, prev_index);
    prev_index = index;
    const std::int64_t floor = LogHistogram::bucket_floor(index);
    const std::int64_t width = LogHistogram::bucket_width(index);
    EXPECT_LE(floor, v) << v;
    EXPECT_GT(floor + width, v) << v;
  }
}

TEST(LogHistogram, NegativeValuesClampToZero) {
  LogHistogram h;
  h.record(-50);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(LogHistogram, AllZeroSamplesQuantileIsZero) {
  LogHistogram h;
  h.record(0, 10'000);
  EXPECT_EQ(h.count(), 10'000u);
  EXPECT_EQ(h.sum(), 0);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0) << q;
  }
}

TEST(LogHistogram, EmptyQuantileIsZero) {
  const LogHistogram h;
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(LogHistogram, SingleBucketQuantilesReturnThatBucketsMidpoint) {
  // Every sample in one bucket: p50 = p95 = p99, within the bucket.
  LogHistogram h;
  h.record(100, 5'000);
  const std::uint32_t index = LogHistogram::bucket_index(100);
  const std::int64_t floor = LogHistogram::bucket_floor(index);
  const std::int64_t width = LogHistogram::bucket_width(index);
  const std::int64_t mid = floor + (width - 1) / 2;
  EXPECT_EQ(h.quantile(0.5), mid);
  EXPECT_EQ(h.quantile(0.95), mid);
  EXPECT_EQ(h.quantile(0.99), mid);
  EXPECT_LE(floor, 100);
  EXPECT_GT(floor + width, 100);
}

TEST(LogHistogram, QuantileRelativeErrorStaysUnderFivePercent) {
  // 32 sub-buckets per octave bound the midpoint error at ~3.2%;
  // assert the documented 5% envelope against exact sample quantiles
  // for three very different shapes.
  const auto check = [](const std::vector<std::int64_t>& samples) {
    LogHistogram h;
    for (const std::int64_t v : samples) h.record(v);
    std::vector<std::int64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.50, 0.95, 0.99}) {
      const std::size_t rank = std::min(
          sorted.size() - 1,
          static_cast<std::size_t>(
              std::ceil(q * static_cast<double>(sorted.size()))) -
              1);
      const double exact = static_cast<double>(sorted[rank]);
      const double approx = static_cast<double>(h.quantile(q));
      ASSERT_GT(exact, 0.0);
      EXPECT_LE(std::abs(approx - exact) / exact, 0.05)
          << "q=" << q << " exact=" << exact << " approx=" << approx;
    }
  };

  std::vector<std::int64_t> uniform;
  for (std::int64_t v = 1; v <= 20'000; ++v) uniform.push_back(v);
  check(uniform);

  std::vector<std::int64_t> geometric;
  for (std::int64_t v = 1; v < 4'000'000'000L; v = v * 3 / 2 + 1) {
    geometric.push_back(v);
  }
  check(geometric);

  std::vector<std::int64_t> heavy_tail;  // ns-scale latencies
  for (std::int64_t i = 1; i <= 5'000; ++i) {
    heavy_tail.push_back(1'000 + i);             // dense body
    if (i % 100 == 0) heavy_tail.push_back(i * 1'000'000);  // sparse tail
  }
  check(heavy_tail);
}

TEST(LogHistogram, MergeAndBucketRoundTripPreserveEverything) {
  LogHistogram a;
  LogHistogram b;
  for (std::int64_t v = 1; v < 10'000; v += 7) a.record(v);
  for (std::int64_t v = 50'000; v < 90'000; v += 11) b.record(v, 2);
  LogHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());

  const LogHistogram rebuilt =
      LogHistogram::from_buckets(merged.nonzero(), merged.sum());
  EXPECT_EQ(rebuilt, merged);
  EXPECT_EQ(rebuilt.quantile(0.95), merged.quantile(0.95));
}

// ---------------------------------------------------------------- //
// Recorder + PSTS sidecar

class TimeseriesFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_timeseries_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

SeriesSnapshot sample_snapshot() {
  TimeseriesRecorder recorder{SimTime::seconds(10)};
  for (std::uint64_t k = 0; k < 5; ++k) {
    SeriesRow row;
    row.counters["sim.events_executed"] = 1'000 + k;
    row.counters["p2p.chunks_delivered"] = 10 * k;
    LogHistogram h;
    h.record(static_cast<std::int64_t>(1'000'000 + k * 500), 3 + k);
    row.histograms["p2p.discovery.rejoin_latency_ns"] = h;
    recorder.record("TVAnts#seed=1#dur=50000000000", k,
                    SimTime::seconds(10 * static_cast<std::int64_t>(k + 1)),
                    std::move(row));
  }
  SeriesRow other;
  other.counters["sim.events_executed"] = 7;
  recorder.record("PPLive#seed=2#dur=10000000000", 0, SimTime::seconds(10),
                  std::move(other));
  return recorder.snapshot();
}

TEST_F(TimeseriesFileTest, WriteReadRoundTripIsLossless) {
  const SeriesSnapshot before = sample_snapshot();
  const auto path = dir_ / "series.psts";
  write_series(path, before);
  const SeriesSnapshot after = read_series(path);
  EXPECT_EQ(deterministic_series(after), deterministic_series(before));
  ASSERT_EQ(after.runs.size(), 2u);
  const RunSeries& run = after.runs.at("TVAnts#seed=1#dur=50000000000");
  EXPECT_EQ(run.interval_ns, SimTime::seconds(10).ns());
  ASSERT_EQ(run.intervals.size(), 5u);
  EXPECT_EQ(run.intervals[2].row.counters.at("p2p.chunks_delivered"), 20u);
  const LogHistogram& h =
      run.intervals[0].row.histograms.at("p2p.discovery.rejoin_latency_ns");
  EXPECT_EQ(h.count(), 3u);
}

TEST_F(TimeseriesFileTest, StrictReaderThrowsOnCorruptionSalvageRecovers) {
  const auto path = dir_ / "series.psts";
  write_series(path, sample_snapshot());

  // Flip a byte late in the file (inside a framed payload).
  std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(f.good());
  f.seekp(-10, std::ios::end);
  f.put('\xff');
  f.close();

  EXPECT_THROW((void)read_series(path), std::runtime_error);

  SeriesSalvageReport report;
  const SeriesSnapshot salvaged = read_series_salvage(path, &report);
  EXPECT_TRUE(report.framing.header_valid);
  EXPECT_GT(report.framing.records_dropped + report.payloads_skipped, 0u);
  // The undamaged intervals survive.
  EXPECT_FALSE(salvaged.runs.empty());
}

TEST_F(TimeseriesFileTest, ReadersRejectMissingAndForeignFiles) {
  EXPECT_THROW((void)read_series(dir_ / "absent.psts"), std::runtime_error);
  const auto path = dir_ / "foreign.psts";
  std::ofstream{path} << "this is not a PSTS file at all";
  EXPECT_THROW((void)read_series(path), std::runtime_error);
  SeriesSalvageReport report;
  EXPECT_TRUE(read_series_salvage(path, &report).runs.empty());
  EXPECT_FALSE(report.framing.header_valid);
}

TEST(Timeseries, RecorderSanitizesKeysAndKeepsIntervalsSorted) {
  TimeseriesRecorder recorder{SimTime::seconds(1)};
  SeriesRow row;
  row.counters["sim.events_executed"] = 1;
  recorder.record("bad\tkey\nname", 0, SimTime::seconds(1), row);
  recorder.record("run", 1, SimTime::seconds(2), row);
  recorder.record("run", 0, SimTime::seconds(1), row);
  const SeriesSnapshot snapshot = recorder.snapshot();
  EXPECT_EQ(snapshot.runs.count("bad key name"), 1u);
  const auto& intervals = snapshot.runs.at("run").intervals;
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_LT(intervals[0].index, intervals[1].index);
}

TEST(Timeseries, DeterministicSeriesIsStableAcrossInsertionOrder) {
  SeriesRow row_a;
  row_a.counters["z.metric"] = 1;
  row_a.counters["a.metric"] = 2;
  SeriesRow row_b = row_a;

  TimeseriesRecorder first{SimTime::seconds(1)};
  first.record("beta", 0, SimTime::seconds(1), row_a);
  first.record("alpha", 0, SimTime::seconds(1), row_a);
  TimeseriesRecorder second{SimTime::seconds(1)};
  second.record("alpha", 0, SimTime::seconds(1), row_b);
  second.record("beta", 0, SimTime::seconds(1), row_b);

  const std::string rendering = deterministic_series(first.snapshot());
  EXPECT_EQ(rendering, deterministic_series(second.snapshot()));
  EXPECT_NE(rendering.find("peerscope.series/1"), std::string::npos);
  EXPECT_LT(rendering.find("run alpha"), rendering.find("run beta"));
}

TEST(Timeseries, RenderingsCoverCountersAndHistograms) {
  const SeriesSnapshot snapshot = sample_snapshot();
  const std::string csv = render_series_csv(snapshot);
  EXPECT_NE(csv.find("run,index,at_ns,metric,value,count,sum,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("p2p.chunks_delivered,20"), std::string::npos);
  EXPECT_NE(csv.find("p2p.discovery.rejoin_latency_ns"), std::string::npos);
  const std::string markdown = render_series_markdown(snapshot);
  EXPECT_NE(markdown.find('|'), std::string::npos);
  EXPECT_NE(markdown.find("TVAnts#seed=1#dur=50000000000"),
            std::string::npos);
}

TEST(Timeseries, InstallSeriesTogglesTheGlobalSlot) {
  EXPECT_FALSE(series_enabled());
  TimeseriesRecorder recorder;
  install_series(&recorder);
  EXPECT_TRUE(series_enabled());
  EXPECT_EQ(series(), &recorder);
  install_series(nullptr);
  EXPECT_FALSE(series_enabled());
}

}  // namespace
}  // namespace peerscope::obs
