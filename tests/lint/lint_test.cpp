// Fixture-driven tests for peerscope-lint (tools/lint/lint.hpp).
//
// Each fixture directory under tests/lint/fixtures/ is a miniature
// repository root; the suite runs one rule per fixture and asserts
// the exact hit / miss / suppression behaviour. The fixtures are
// excluded from the real-tree walk, so their deliberate violations
// never fail the `lint.tree_clean` check.
//
// This file's assertions quote expected diagnostics, some of which
// contain schema-shaped literals; they are examples, not uses.
// peerscope-lint: allow-file(schema-version-consistency)

#include "lint/lint.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <tuple>
#include <vector>

namespace peerscope::lint {
namespace {

using ::testing::AllOf;
using ::testing::Contains;
using ::testing::HasSubstr;
using ::testing::IsEmpty;
using ::testing::Not;

std::filesystem::path fixture_root(const std::string& name) {
  return std::filesystem::path{PEERSCOPE_LINT_FIXTURES} / name;
}

/// Runs exactly one rule over a fixture root and stringifies the
/// findings ("file:line: [rule] message").
std::vector<std::string> lint_fixture(const std::string& fixture,
                                      std::string_view rule) {
  Options options;
  options.root = fixture_root(fixture);
  options.rules.insert(std::string{rule});
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors, IsEmpty()) << "fixture: " << fixture;
  std::vector<std::string> out;
  out.reserve(result.findings.size());
  for (const auto& finding : result.findings) {
    out.push_back(to_string(finding));
  }
  return out;
}

// --- no-raw-artifact-io ----------------------------------------------

TEST(RawIoRule, FlagsEveryBannedPrimitiveWithFileAndLine) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_writer.cpp:7"),
                             HasSubstr("std::ofstream"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_writer.cpp:12"),
                             HasSubstr("std::fstream"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad_writer.cpp:16"),
                                       HasSubstr("fopen()"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad_writer.cpp:21"),
                                       HasSubstr("open(2)"))));
}

TEST(RawIoRule, AtomicFileAndFaultShimAreAllowlisted) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("atomic_file.cpp"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("io_faults.cpp"))));
}

TEST(RawIoRule, CommentAndStringMentionsDoNotFire) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("clean_reader.cpp"))));
}

TEST(RawIoRule, UnshimmedReadInsideSrcIsAFinding) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_reader.cpp:7"),
                             HasSubstr("std::ifstream"),
                             HasSubstr("util::io::read_file"))));
  // The suppressed reader in the same file stays quiet.
  EXPECT_THAT(findings, Not(Contains(HasSubstr("bad_reader.cpp:15"))));
}

TEST(RawIoRule, ReadsOutsideSrcDoNotFire) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("tool_reader.cpp"))));
}

TEST(RawIoRule, TrailingAndOwnLineAllowsSuppress) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("suppressed.cpp:5"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("suppressed.cpp:10"))));
}

TEST(RawIoRule, AllowNamingADifferentRuleDoesNotSuppress) {
  const auto findings = lint_fixture("raw_io", kRuleRawIo);
  EXPECT_THAT(findings, Contains(HasSubstr("suppressed.cpp:14")));
}

TEST(RawIoRule, FindingCountIsExact) {
  EXPECT_EQ(lint_fixture("raw_io", kRuleRawIo).size(), 6u);
}

// --- metric-name-registry --------------------------------------------

TEST(MetricNameRule, RegisteredUsesAreClean) {
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("good.cpp"))));
}

TEST(MetricNameRule, UnregisteredNameIsAFinding) {
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad.cpp:3"),
                                       HasSubstr("rogue.counter"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad.cpp:5"),
                                       HasSubstr("rogue_span"))));
}

TEST(MetricNameRule, KindMismatchIsAFinding) {
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad.cpp:4"),
                             HasSubstr("used as histogram"),
                             HasSubstr("registered as counter"))));
}

TEST(MetricNameRule, RegisteredButUnusedEntryIsAFinding) {
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("metric_names.def:8"),
                             HasSubstr("unused.counter"),
                             HasSubstr("never used"))));
}

TEST(MetricNameRule, DynamicPrefixEntrySatisfiedByConcatenation) {
  // good.cpp builds "run." + app; the `run.<app>` entry must count as
  // used (no unused-entry finding) and the literal must not be rogue.
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("run."))));
}

TEST(MetricNameRule, SuppressedRogueNameIsQuiet) {
  const auto findings = lint_fixture("metrics", kRuleMetricNames);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("synthetic.name"))));
  EXPECT_EQ(findings.size(), 4u);
}

// --- metric-name-registry: the trace-name half -----------------------

TEST(TraceNameRule, RegisteredUsesAreClean) {
  const auto findings = lint_fixture("trace", kRuleMetricNames);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("good.cpp"))));
}

TEST(TraceNameRule, UnregisteredNamesAreFindings) {
  const auto findings = lint_fixture("trace", kRuleMetricNames);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad.cpp:3"),
                             HasSubstr("rogue.instant"),
                             HasSubstr("trace_names.def"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad.cpp:5"),
                                       HasSubstr("rogue.sample"))));
}

TEST(TraceNameRule, KindMismatchIsAFinding) {
  const auto findings = lint_fixture("trace", kRuleMetricNames);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad.cpp:4"),
                             HasSubstr("used as counter"),
                             HasSubstr("registered as instant"))));
}

TEST(TraceNameRule, RegisteredButUnusedEntryIsAFinding) {
  const auto findings = lint_fixture("trace", kRuleMetricNames);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("trace_names.def:5"),
                             HasSubstr("unused.instant"),
                             HasSubstr("never used"))));
}

TEST(TraceNameRule, SuppressedRogueNameIsQuiet) {
  const auto findings = lint_fixture("trace", kRuleMetricNames);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("synthetic.instant"))));
  EXPECT_EQ(findings.size(), 4u);
}

// --- schema-version-consistency --------------------------------------

TEST(SchemaRule, RegisteredLiteralIsClean) {
  const auto findings = lint_fixture("schema", kRuleSchemaVersions);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("good.cpp"))));
}

TEST(SchemaRule, UnregisteredVersionBumpIsAFinding) {
  const auto findings = lint_fixture("schema", kRuleSchemaVersions);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad.cpp:2"),
                             HasSubstr("peerscope.metrics/2"))));
}

TEST(SchemaRule, SuppressedLiteralIsQuiet) {
  const auto findings = lint_fixture("schema", kRuleSchemaVersions);
  EXPECT_THAT(findings,
              Not(Contains(HasSubstr("peerscope.metrics/9"))));
}

TEST(SchemaRule, OrphanRegistryEntryIsAFinding) {
  // Mentions in comments do not count as uses, so the orphan entry
  // (named only in a good.cpp comment) must still be flagged.
  const auto findings = lint_fixture("schema", kRuleSchemaVersions);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("schema_versions.def:4"),
                             HasSubstr("peerscope.orphan/3"))));
  EXPECT_EQ(findings.size(), 2u);
}

// --- exit-code-uniqueness --------------------------------------------

TEST(ExitCodeRule, DuplicateValueIsAFinding) {
  const auto findings = lint_fixture("exit_codes", kRuleExitCodes);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("cli.cpp:4"),
                             HasSubstr("kExitDuplicate"),
                             HasSubstr("kExitUnknownApp"))));
}

TEST(ExitCodeRule, UndocumentedValueIsAFinding) {
  const auto findings = lint_fixture("exit_codes", kRuleExitCodes);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("cli.cpp:5"),
                             HasSubstr("kExitSecret"),
                             HasSubstr("not documented"))));
}

TEST(ExitCodeRule, DocumentedUniqueConstantsAreClean) {
  const auto findings = lint_fixture("exit_codes", kRuleExitCodes);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("kExitUsage"))));
  EXPECT_EQ(findings.size(), 2u);
}

// The registry sub-check only arms when tools/exit_codes.def exists —
// the `exit_codes` fixture above has none and must keep its original
// two findings; the `discovery` fixture exercises all three registry
// diagnostics.

TEST(ExitCodeRule, UnregisteredConstantIsAFinding) {
  const auto findings = lint_fixture("discovery", kRuleExitCodes);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("cli.cpp:5"),
                             HasSubstr("kExitRogue"),
                             HasSubstr("not registered"))));
}

TEST(ExitCodeRule, RegistryValueDisagreementIsAFinding) {
  const auto findings = lint_fixture("discovery", kRuleExitCodes);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("cli.cpp:6"),
                             HasSubstr("kExitDrifted"),
                             HasSubstr("disagrees"))));
}

TEST(ExitCodeRule, StaleRegistryEntryIsAFinding) {
  const auto findings = lint_fixture("discovery", kRuleExitCodes);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("exit_codes.def:5"),
                             HasSubstr("kExitRetired"),
                             HasSubstr("no tools/ constant"))));
}

TEST(ExitCodeRule, RegisteredConstantsAreClean) {
  const auto findings = lint_fixture("discovery", kRuleExitCodes);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("kExitDegraded"))));
  EXPECT_EQ(findings.size(), 3u);
}

// --- header-hygiene ---------------------------------------------------

TEST(HeaderRule, MissingPragmaOnceIsAFinding) {
  const auto findings = lint_fixture("headers", kRuleHeaderHygiene);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("missing.hpp"),
                             HasSubstr("#pragma once"))));
}

TEST(HeaderRule, UsingNamespaceIsAFinding) {
  const auto findings = lint_fixture("headers", kRuleHeaderHygiene);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("using_ns.hpp:6"),
                             HasSubstr("using-namespace"))));
}

TEST(HeaderRule, CleanAndSuppressedHeadersAreQuiet) {
  const auto findings = lint_fixture("headers", kRuleHeaderHygiene);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("clean.hpp"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("suppressed.hpp"))));
  EXPECT_EQ(findings.size(), 2u);
}

// --- engine-hot-path --------------------------------------------------

TEST(EngineHotPathRule, PriorityQueueInSimIsAFinding) {
  const auto findings = lint_fixture("engine", kRuleEngineHotPath);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("src/sim/hot.cpp:5"),
                             HasSubstr("std::priority_queue"),
                             HasSubstr("sim::CalendarQueue"))));
}

TEST(EngineHotPathRule, PlainNewIsAFindingPlacementNewIsNot) {
  const auto findings = lint_fixture("engine", kRuleEngineHotPath);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("src/sim/hot.cpp:10"),
                             HasSubstr("heap allocation (new)"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("hot.cpp:15"))));
}

TEST(EngineHotPathRule, SmartPointerFactoriesInP2pAreFindings) {
  const auto findings = lint_fixture("engine", kRuleEngineHotPath);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("src/p2p/hot.cpp:5"),
                             HasSubstr("std::make_unique"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("src/p2p/hot.cpp:6"),
                             HasSubstr("std::make_shared"))));
}

TEST(EngineHotPathRule, AllowAnnotationsSuppress) {
  const auto findings = lint_fixture("engine", kRuleEngineHotPath);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("hot.cpp:14"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("hot.cpp:15"))));
}

TEST(EngineHotPathRule, OutOfScopeDirsAndCommentsAreClean) {
  const auto findings = lint_fixture("engine", kRuleEngineHotPath);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("cold.cpp"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("hot.cpp:21"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("hot.cpp:22"))));
  EXPECT_EQ(findings.size(), 4u);
}

// --- no-committed-build-artifacts (path-list core) --------------------

TEST(BuildArtifactRule, FlagsBuildTreesAndObjectFiles) {
  const auto findings = check_tracked_paths(
      {"build/tools/peerscope", "build-tsan/x.txt", "lib/archive.a",
       "obj/thing.o", "compile_commands.json", "core"});
  EXPECT_EQ(findings.size(), 6u);
  for (const auto& finding : findings) {
    EXPECT_EQ(finding.rule, kRuleBuildArtifacts);
  }
}

TEST(BuildArtifactRule, SourcePathsAreClean) {
  EXPECT_THAT(
      check_tracked_paths({"src/sim/engine.cpp", "docs/core.md",
                           "tests/lint/fixtures/clean/src/main.cpp",
                           "builders/notes.txt", "build.md"}),
      IsEmpty());
}

// --- whole-tree behaviour --------------------------------------------

TEST(LintRun, CleanFixtureIsCleanUnderEveryRule) {
  Options options;
  options.root = fixture_root("clean");
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors, IsEmpty());
  EXPECT_THAT(result.findings, IsEmpty());
}

TEST(LintRun, FindingsAreSortedByFileThenLine) {
  Options options;
  options.root = fixture_root("raw_io");
  options.rules.insert(std::string{kRuleRawIo});
  options.check_tracked = false;
  const LintResult result = run(options);
  ASSERT_EQ(result.findings.size(), 6u);
  EXPECT_TRUE(std::is_sorted(
      result.findings.begin(), result.findings.end(),
      [](const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line) < std::tie(b.file, b.line);
      }));
}

TEST(LintRun, UnknownRuleIsAConfigError) {
  Options options;
  options.root = fixture_root("clean");
  options.rules.insert("no-such-rule");
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors, Contains(HasSubstr("no-such-rule")));
}

TEST(LintRun, MissingRegistryIsAConfigError) {
  Options options;
  options.root = fixture_root("headers");  // has no src/obs/*.def
  options.rules.insert(std::string{kRuleMetricNames});
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors,
              Contains(HasSubstr("metric_names.def")));
  EXPECT_THAT(result.errors,
              Contains(HasSubstr("trace_names.def")));
}

// --- view helpers -----------------------------------------------------

TEST(CodeView, BlanksCommentsAndStringsButKeepsLineStructure) {
  const std::string source =
      "int a; // std::ofstream\n"
      "const char* s = \"std::ofstream\";\n"
      "/* std::ofstream */ int b;\n";
  const std::string view = code_view(source);
  EXPECT_THAT(view, Not(HasSubstr("ofstream")));
  EXPECT_THAT(view, HasSubstr("int a;"));
  EXPECT_THAT(view, HasSubstr("int b;"));
  EXPECT_EQ(std::count(view.begin(), view.end(), '\n'), 3);
}

TEST(CodeView, HandlesRawStringsAndEscapes) {
  const std::string source =
      "auto r = R\"(std::ofstream)\";\n"
      "auto e = \"quote \\\" std::ofstream\";\n";
  EXPECT_THAT(code_view(source), Not(HasSubstr("ofstream")));
}

TEST(NoCommentView, KeepsStringsDropsComments) {
  const std::string source =
      "const char* s = \"kept.literal/1\";  // dropped.comment/2\n";
  const std::string view = no_comment_view(source);
  EXPECT_THAT(view, HasSubstr("kept.literal/1"));
  EXPECT_THAT(view, Not(HasSubstr("dropped.comment/2")));
}

TEST(FindingToString, FormatsFileLineRuleMessage) {
  const Finding finding{"src/a.cpp", 12, "some-rule", "message", {}};
  EXPECT_EQ(to_string(finding), "src/a.cpp:12: [some-rule] message");
}

TEST(FindingToString, OmitsLineZero) {
  const Finding finding{"build/x.o", 0, "some-rule", "committed", {}};
  EXPECT_EQ(to_string(finding), "build/x.o: [some-rule] committed");
}

// --- nondeterministic-iteration --------------------------------------

TEST(IterationRule, BareRangeForOverUnorderedMemberIsAFinding) {
  const auto findings = lint_fixture("iteration", kRuleIteration);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("loops.cpp:5"),
                             HasSubstr("`table_`"),
                             HasSubstr("lint: ordered"))));
}

TEST(IterationRule, AccessorReturningUnorderedIsAFinding) {
  const auto findings = lint_fixture("iteration", kRuleIteration);
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("loops.cpp:7"),
                                       HasSubstr("`members`"))));
}

TEST(IterationRule, OrderedContainersAreClean) {
  const auto findings = lint_fixture("iteration", kRuleIteration);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("loops.cpp:6"))));
}

TEST(IterationRule, TrailingAndOwnLineOrderedMarkersSuppress) {
  const auto findings = lint_fixture("iteration", kRuleIteration);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("loops.cpp:8"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("loops.cpp:10"))));
}

TEST(IterationRule, CommentsAndNonSrcDirsAreOutOfScope) {
  const auto findings = lint_fixture("iteration", kRuleIteration);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("loops.cpp:11"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("tools/"))));
  EXPECT_EQ(findings.size(), 2u);
}

// --- rng-discipline ---------------------------------------------------

TEST(RngRule, AmbientEntropyAndWallClockSeedingAreFindings) {
  const auto findings = lint_fixture("rng", kRuleRng);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_rng.cpp:5"),
                             HasSubstr("std::random_device"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_rng.cpp:6"),
                             HasSubstr("default-constructed"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("bad_rng.cpp:8"),
                             HasSubstr("wall-clock"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("bad_rng.cpp:9"),
                                       HasSubstr("rand()"))));
}

TEST(RngRule, SeededEngineAndSuppressedLineAreClean) {
  const auto findings = lint_fixture("rng", kRuleRng);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("bad_rng.cpp:7"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("bad_rng.cpp:11"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("bad_rng.cpp:12"))));
}

TEST(RngRule, SrcUtilIsExemptButTestsAreNot) {
  const auto findings = lint_fixture("rng", kRuleRng);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("util/rng.cpp"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("tests/seeded.cpp:6"),
                             HasSubstr("std::random_device"))));
  // bad_rng.cpp: device, unseeded engine, srand + time (one line,
  // two findings), rand — plus the tests/ device.
  EXPECT_EQ(findings.size(), 6u);
}

// --- lock-annotation --------------------------------------------------

TEST(LockRule, RawStdLockTypesInSrcAreFindings) {
  const auto findings = lint_fixture("locks", kRuleLocks);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("guarded.cpp:4"),
                             HasSubstr("std::mutex"),
                             HasSubstr("util::Mutex"))));
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("guarded.cpp:5"),
                             HasSubstr("std::condition_variable"))));
  EXPECT_THAT(findings, Contains(AllOf(HasSubstr("guarded.cpp:8"),
                                       HasSubstr("std::lock_guard"))));
}

TEST(LockRule, ToolsAreInScopeTestsAreNot) {
  const auto findings = lint_fixture("locks", kRuleLocks);
  EXPECT_THAT(findings, Contains(HasSubstr("tools/locker.cpp:3")));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("scenario.cpp"))));
}

TEST(LockRule, WrapperDefinitionSiteAndSuppressionsAreClean) {
  const auto findings = lint_fixture("locks", kRuleLocks);
  // The message itself names util/mutex.hpp, so match the file:line
  // prefix a finding from the wrapper would carry.
  EXPECT_THAT(findings, Not(Contains(HasSubstr("src/util/mutex.hpp:"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("guarded.cpp:9"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("guarded.cpp:13"))));
  // guarded.cpp: mutex, condition_variable, lock_guard + its <mutex>
  // argument; locker.cpp: one.
  EXPECT_EQ(findings.size(), 5u);
}

// --- module-layering --------------------------------------------------

TEST(LayeringRule, UndeclaredDependencyIsAFinding) {
  const auto findings = lint_fixture("layers", kRuleLayering);
  EXPECT_THAT(findings,
              Contains(AllOf(HasSubstr("route.cpp:3"),
                             HasSubstr("\"sim/...\""),
                             HasSubstr("layers.def"))));
}

TEST(LayeringRule, DeclaredEdgesSuppressionsAndForeignIncludesAreClean) {
  const auto findings = lint_fixture("layers", kRuleLayering);
  EXPECT_THAT(findings, Not(Contains(HasSubstr("route.cpp:4"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("route.cpp:5"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("route.cpp:6"))));
  EXPECT_THAT(findings, Not(Contains(HasSubstr("engine.hpp"))));
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LayeringRule, SrcDirMissingFromLayersDefIsAConfigError) {
  Options options;
  options.root = fixture_root("layers_unknown");
  options.rules.insert(std::string{kRuleLayering});
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors,
              Contains(AllOf(HasSubstr("src/rogue"),
                             HasSubstr("layers.def"))));
}

TEST(LayeringRule, AbsentLayersDefSkipsTheRuleSilently) {
  Options options;
  options.root = fixture_root("headers");  // no tools/layers.def
  options.rules.insert(std::string{kRuleLayering});
  options.check_tracked = false;
  const LintResult result = run(options);
  EXPECT_THAT(result.errors, IsEmpty());
  EXPECT_THAT(result.findings, IsEmpty());
}

// --- fingerprints and baseline ---------------------------------------

TEST(Fingerprint, MatchesTheDocumentedFnv1aConstruction) {
  // Golden value cross-checked against an independent FNV-1a
  // implementation of rule NUL rel-path NUL key.
  EXPECT_EQ(fingerprint("rng-discipline", "src/a.cpp",
                        "int x = std::rand();"),
            "43f8d53763b586d8");
  EXPECT_EQ(fingerprint("demo-rule", "demo/path.cpp", "line text"),
            "dbb69ed88a68ac9c");
}

TEST(Fingerprint, IsLineNumberIndependentAndPathSensitive) {
  EXPECT_NE(fingerprint("r", "a.cpp", "x"), fingerprint("r", "b.cpp", "x"));
  EXPECT_NE(fingerprint("r", "a.cpp", "x"), fingerprint("q", "a.cpp", "x"));
  // The separator keeps ("ab","c") distinct from ("a","bc").
  EXPECT_NE(fingerprint("r", "ab", "c"), fingerprint("r", "a", "bc"));
}

TEST(Fingerprint, EveryFindingCarriesOne) {
  Options options;
  options.root = fixture_root("rng");
  options.rules.insert(std::string{kRuleRng});
  options.check_tracked = false;
  const LintResult result = run(options);
  ASSERT_FALSE(result.findings.empty());
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.fingerprint.size(), 16u) << to_string(finding);
    EXPECT_EQ(finding.fingerprint.find_first_not_of("0123456789abcdef"),
              std::string::npos);
  }
}

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            "peerscope_lint_baseline_test.txt";
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  void write_baseline(const std::string& content) {
    // Test scratch file, not a run artifact.
    std::ofstream out{path_};  // peerscope-lint: allow(no-raw-artifact-io)
    out << content;
  }

  [[nodiscard]] LintResult run_rng(bool with_baseline) const {
    Options options;
    options.root = fixture_root("rng");
    options.rules.insert(std::string{kRuleRng});
    options.check_tracked = false;
    if (with_baseline) options.baseline = path_;
    return run(options);
  }

  std::filesystem::path path_;
};

TEST_F(BaselineTest, ListedFingerprintsAreSuppressedAndCounted) {
  const LintResult before = run_rng(false);
  ASSERT_FALSE(before.findings.empty());
  std::string baseline = "# accepted debt\n";
  for (const auto& finding : before.findings) {
    baseline += finding.fingerprint + " " + finding.rule + " " +
                finding.file.generic_string() + "\n";
  }
  write_baseline(baseline);
  const LintResult after = run_rng(true);
  EXPECT_THAT(after.errors, IsEmpty());
  EXPECT_THAT(after.findings, IsEmpty());
  EXPECT_EQ(after.baseline_suppressed, before.findings.size());
}

TEST_F(BaselineTest, StaleEntryBecomesAFinding) {
  write_baseline("0123456789abcdef rng-discipline src/ghost.cpp\n");
  const LintResult result = run_rng(true);
  EXPECT_THAT(result.errors, IsEmpty());
  EXPECT_EQ(result.baseline_suppressed, 0u);
  bool found_stale = false;
  for (const auto& finding : result.findings) {
    if (finding.message.find("stale") != std::string::npos &&
        finding.message.find("0123456789abcdef") != std::string::npos) {
      found_stale = true;
      EXPECT_EQ(finding.line, 1u);
    }
  }
  EXPECT_TRUE(found_stale);
}

TEST_F(BaselineTest, MalformedLineIsAConfigError) {
  write_baseline("not-a-fingerprint rng-discipline src/x.cpp\n");
  const LintResult result = run_rng(true);
  EXPECT_THAT(result.errors, Contains(HasSubstr("malformed baseline")));
}

TEST_F(BaselineTest, MissingBaselineFileIsAConfigError) {
  const LintResult result = run_rng(true);  // path_ never written
  EXPECT_THAT(result.errors, Contains(HasSubstr("cannot read baseline")));
}

// --- SARIF ------------------------------------------------------------

/// Minimal structural JSON check: quotes/escapes tracked, braces and
/// brackets balanced in order. Catches broken escaping or nesting
/// without a full parser.
bool json_well_formed(std::string_view text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(Sarif, RendersVersionRulesAndOneResultPerFinding) {
  Options options;
  options.root = fixture_root("locks");
  options.rules.insert(std::string{kRuleLocks});
  options.check_tracked = false;
  const LintResult result = run(options);
  ASSERT_FALSE(result.findings.empty());
  const std::string sarif = to_sarif(result, options.root);
  EXPECT_TRUE(json_well_formed(sarif));
  EXPECT_THAT(sarif, HasSubstr("\"version\": \"2.1.0\""));
  EXPECT_THAT(sarif, HasSubstr("sarif-2.1.0.json"));
  EXPECT_THAT(sarif, HasSubstr("\"name\": \"peerscope-lint\""));
  for (const auto rule : rule_names()) {
    EXPECT_THAT(sarif, HasSubstr("\"id\": \"" + std::string{rule} + "\""));
  }
  std::size_t results = 0;
  for (std::size_t pos = sarif.find("\"ruleId\"");
       pos != std::string::npos;
       pos = sarif.find("\"ruleId\"", pos + 1)) {
    ++results;
  }
  EXPECT_EQ(results, result.findings.size());
  // URIs are root-relative with forward slashes.
  EXPECT_THAT(sarif, HasSubstr("\"uri\": \"src/guarded.cpp\""));
  EXPECT_THAT(sarif, HasSubstr("\"startLine\": 4"));
  EXPECT_THAT(sarif, HasSubstr("partialFingerprints"));
}

TEST(Sarif, EscapesMessagesAndOmitsRegionForLineZeroFindings) {
  LintResult result;
  result.findings.push_back({"src/a.cpp", 12, "demo-rule",
                             "say \"hi\" back\\slash", "0011223344556677"});
  result.findings.push_back(
      {"build/x.o", 0, "demo-rule", "whole-file", "8899aabbccddeeff"});
  const std::string sarif = to_sarif(result, ".");
  EXPECT_TRUE(json_well_formed(sarif));
  EXPECT_THAT(sarif,
              HasSubstr("say \\\"hi\\\" back\\\\slash"));
  EXPECT_THAT(sarif, HasSubstr("\"startLine\": 12"));
  // Exactly one region: the line-0 finding must omit it.
  EXPECT_EQ(sarif.find("\"region\""), sarif.rfind("\"region\""));
}

}  // namespace
}  // namespace peerscope::lint
