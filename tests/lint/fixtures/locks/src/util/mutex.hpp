#pragma once
#include <mutex>

// The one allowed definition site: the annotated wrapper itself.
namespace util {
class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};
}  // namespace util
