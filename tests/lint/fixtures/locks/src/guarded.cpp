#include <condition_variable>
#include <mutex>

std::mutex g_mutex;
std::condition_variable g_cv;

void touch() {
  std::lock_guard<std::mutex> lock{g_mutex};
  // a comment naming std::mutex must not fire
}

void interop() {
  std::unique_lock<std::mutex> lock{g_mutex};  // peerscope-lint: allow(lock-annotation)
  g_cv.notify_one();
}
