#include <mutex>

std::mutex g_tool_mutex;
