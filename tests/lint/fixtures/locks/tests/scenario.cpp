#include <mutex>

// Tests are exempt: they synchronise scenario machinery, and gtest
// helpers interoperate with std primitives directly.
std::mutex g_test_mutex;
