// Clean fixture: uses every registry entry, writes nothing raw.
#include "clean.hpp"

const char* kSchema = "peerscope.clean/1";

void work() { obs::counter("clean.counter").add(); }
void tick() { obs::trace_instant("clean.tick"); }
