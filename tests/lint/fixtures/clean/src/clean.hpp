// Clean fixture header.
#pragma once

void work();
