// Fixture: file-wide opt-out.
// peerscope-lint: allow-file(header-hygiene)
// No #pragma once on purpose; the allow-file covers it.
int suppressed_header();
