// Fixture: using-namespace in a header -> one finding.
#pragma once

#include <string>

using namespace std;  // finding: leaks into every includer

inline string shout(const string& s) { return s + "!"; }
