// Fixture: header with no #pragma once -> one finding. The directive
// appearing in this comment — #pragma once — must not satisfy the
// rule, because the scan runs on the comment-stripped code view.
int missing_guard();
