// Fixture: hygienic header — no findings. A using-namespace inside a
// string literal is not a violation.
#pragma once

#include <string>

inline std::string hygiene_doc() { return "using namespace std;"; }
