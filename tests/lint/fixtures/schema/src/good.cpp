// Fixture: a literal that matches the registry, in code and inside a
// larger string. Comment mentions must not count as uses — the
// registered-but-unused check relies on that, so this comment naming
// peerscope.orphan/3 must not mark the orphan entry used.
const char* kSchema = "peerscope.metrics/1";
const char* kHeader = "{\"schema\": \"peerscope.metrics/1\"}";
