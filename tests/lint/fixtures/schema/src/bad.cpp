// Fixture: a version bump that skipped the registry.
const char* kBumped = "peerscope.metrics/2";  // finding: not registered
void suppressed() {
  // peerscope-lint: allow(schema-version-consistency): docs example
  const char* quiet = "peerscope.metrics/9";
  (void)quiet;
}
