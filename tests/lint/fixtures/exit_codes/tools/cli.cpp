// Fixture: exit-code constants for the exit-code-uniqueness rule.
constexpr int kExitUsage = 2;       // documented, unique: clean
constexpr int kExitUnknownApp = 3;  // documented, unique: clean
constexpr int kExitDuplicate = 3;   // finding: reuses 3
constexpr int kExitSecret = 9;      // finding: not in README table
