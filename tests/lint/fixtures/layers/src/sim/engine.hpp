#pragma once
#include "net/route.hpp"
#include "util/base.hpp"
int engine();
