#pragma once
int base();
