#include "net/route.hpp"

#include "sim/engine.hpp"
#include "sim/engine.hpp"  // peerscope-lint: allow(module-layering)
#include "util/base.hpp"
#include "vendor/blob.h"

int route() { return base(); }
