#pragma once
int route();
