// Fixture: identical tokens outside src/sim and src/p2p are out of the
// engine-hot-path rule's scope and must stay clean.
#include <memory>
#include <queue>

void cold_path() {
  std::priority_queue<int> heap;
  heap.push(1);
  auto p = std::make_unique<int>(2);
  int* q = new int(3);
  delete q;
  (void)p;
}
