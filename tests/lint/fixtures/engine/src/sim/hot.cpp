// Fixture: deliberate engine-hot-path violations in src/sim.
#include <queue>

void bad_scheduler() {
  std::priority_queue<int> heap;  // line 5: banned container
  heap.push(1);
}

void bad_alloc() {
  int* leak = new int(7);  // line 10: per-event heap allocation
  delete leak;
}

void boxed() {
  auto* p = ::new (static_cast<void*>(nullptr)) int{0};  // placement: clean
  (void)p;
}
