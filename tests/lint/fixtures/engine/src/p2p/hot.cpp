// Fixture: engine-hot-path violations and suppressions in src/p2p.
#include <memory>

void bad_factory() {
  auto a = std::make_unique<int>(1);  // line 5: banned in hot path
  auto b = std::make_shared<int>(2);  // line 6: banned in hot path
  (void)a;
  (void)b;
}

void suppressed_setup() {
  // One-time construction, amortised over the whole run.
  // peerscope-lint: allow(engine-hot-path)
  auto sink = std::make_unique<int>(3);
  auto r = std::make_shared<int>(4);  // peerscope-lint: allow(engine-hot-path)
  (void)sink;
  (void)r;
}

void comments_do_not_fire() {
  // std::priority_queue and new and std::make_unique in a comment.
  const char* s = "std::priority_queue new std::make_shared";
  (void)s;
}
