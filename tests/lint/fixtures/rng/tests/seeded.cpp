#include <random>

// Tests are inside the rule's scope: a flaky seed in a test is as
// unreplayable as one in src/.
unsigned test_roll() {
  std::random_device rd;
  return rd();
}
