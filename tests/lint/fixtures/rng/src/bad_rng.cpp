#include <ctime>
#include <random>

unsigned roll() {
  std::random_device rd;
  std::mt19937 unseeded;
  std::mt19937 seeded{12345};
  std::srand(static_cast<unsigned>(time(nullptr)));
  unsigned total = static_cast<unsigned>(std::rand());
  // peerscope-lint: allow(rng-discipline)
  std::mt19937 tolerated;
  // a comment naming std::random_device must not fire
  total += rd() + unseeded() + seeded() + tolerated();
  return total;
}
