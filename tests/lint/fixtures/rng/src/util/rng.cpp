#include <random>

// src/util/ implements the seed-derivation layer, so ambient entropy
// is allowed here and only here.
unsigned entropy() {
  std::random_device rd;
  return rd();
}
