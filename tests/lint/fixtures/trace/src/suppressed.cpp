// Fixture: a rogue trace name under an explicit allow is not a finding.
void quiet() {
  // peerscope-lint: allow(metric-name-registry): synthetic test name
  obs::trace_instant("synthetic.instant");
}
