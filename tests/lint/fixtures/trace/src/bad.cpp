// Fixture: unregistered trace names and a kind mismatch.
void all_bad() {
  obs::trace_instant("rogue.instant");         // finding: unregistered
  obs::trace_counter("good.instant", 1);       // finding: kind
  PEERSCOPE_TRACE_COUNTER("rogue.sample", 3);  // finding: unregistered
}
