// Fixture: every registered trace-name usage pattern the scanner
// accepts.
void all_good() {
  obs::trace_instant("good.instant");
  PEERSCOPE_TRACE_INSTANT("good.instant");
  obs::trace_counter("good.sample", 1);
  PEERSCOPE_TRACE_COUNTER("good.sample", 2);
}
