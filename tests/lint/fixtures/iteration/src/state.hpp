#pragma once
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct State {
  std::unordered_map<int, int> table_;
  std::vector<int> list_;
  const std::unordered_set<int>& members() const { return members_; }
  std::unordered_set<int> members_;
};
