#include "state.hpp"

int sum(const State& s) {
  int total = 0;
  for (const auto& [k, v] : s.table_) total += v;
  for (int x : s.list_) total += x;
  for (int m : s.members()) total += m;
  for (const auto& [k, v] : s.table_) total += v;  // lint: ordered
  // lint: ordered
  for (const auto& [k, v] : s.table_) total += v;
  // a comment naming `for (auto& x : table_)` must not fire
  return total;
}
