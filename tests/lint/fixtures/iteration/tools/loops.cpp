#include <unordered_map>

int tool_sum(const std::unordered_map<int, int>& table_) {
  int total = 0;
  for (const auto& [k, v] : table_) total += v;
  return total;
}
