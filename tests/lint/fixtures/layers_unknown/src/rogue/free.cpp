int freelancer() { return 0; }
