// Fixture: reads and string/comment mentions must not fire. A token
// like std::ofstream in a comment, or "fopen(" in a string, is not a
// write.
#include <fstream>
#include <string>

std::string read_back(const char* path) {
  std::ifstream in{path};
  std::string text{"std::ofstream fopen( ::open("};
  return text;
}
