// Fixture: comment and string mentions must not fire. A token like
// std::ofstream or std::ifstream in a comment, or "fopen(" in a
// string, is neither a write nor an unshimmed read.
#include <string>

std::string read_back() {
  std::string text{"std::ofstream std::ifstream fopen( ::open("};
  return text;
}
