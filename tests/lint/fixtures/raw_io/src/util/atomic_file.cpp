// Fixture: the one allowlisted file. Raw open(2) here is the point —
// this path implements util::write_file_atomic.
int allowlisted(const char* path) { return ::open(path, 0); }
