// Fixture: the other allowlisted file. The fault shim is where raw
// open(2) bottoms out — both read and write primitives are its job.
int shim_open(const char* path) { return ::open(path, 0); }
