// Fixture: a raw read inside src/ bypasses the util::io fault shim
// and must fire; a suppressed one must not.
#include <fstream>
#include <string>

std::string unshimmed(const char* path) {
  std::ifstream in{path};  // finding: std::ifstream
  std::string text;
  in >> text;
  return text;
}

std::string excused(const char* path) {
  // peerscope-lint: allow(no-raw-artifact-io): fixture reader
  std::ifstream in{path};
  std::string text;
  in >> text;
  return text;
}
