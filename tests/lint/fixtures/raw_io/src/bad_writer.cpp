// Fixture: every banned write primitive, unsuppressed. The linter
// must flag each one with its own file:line diagnostic.
#include <cstdio>
#include <fstream>

void bad_ofstream() {
  std::ofstream out{"artifact.json"};  // finding: std::ofstream
  out << "{}";
}

void bad_fstream() {
  std::fstream f{"artifact.bin"};  // finding: std::fstream
}

void bad_fopen() {
  std::FILE* f = fopen("artifact.csv", "w");  // finding: fopen()
  if (f != nullptr) fclose(f);
}

int bad_syscall(const char* path) {
  return ::open(path, 0);  // finding: open(2)
}
