// Fixture: both suppression placements for no-raw-artifact-io.
#include <fstream>

void trailing_allow() {
  std::ofstream out{"x"};  // peerscope-lint: allow(no-raw-artifact-io)
}

void own_line_allow() {
  // peerscope-lint: allow(no-raw-artifact-io): fixture writer
  std::ofstream out{"y"};
}

void wrong_rule_named() {
  std::ofstream out{"z"};  // peerscope-lint: allow(header-hygiene)
}
