// Fixture: the read-side check is scoped to src/ — tools (and tests,
// bench, examples) may slurp files however they like.
#include <fstream>
#include <string>

std::string tool_read(const char* path) {
  std::ifstream in{path};
  std::string text;
  in >> text;
  return text;
}
