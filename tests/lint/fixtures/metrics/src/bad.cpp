// Fixture: unregistered names and a kind mismatch.
void all_bad() {
  obs::counter("rogue.counter").add();              // finding: unregistered
  obs::histogram("good.counter", bounds).observe(1);  // finding: kind
  PEERSCOPE_SPAN("rogue_span");                     // finding: unregistered
}
