// Fixture: a rogue name under an explicit allow is not a finding.
void quiet() {
  // peerscope-lint: allow(metric-name-registry): synthetic test name
  obs::counter("synthetic.name").add();
}
