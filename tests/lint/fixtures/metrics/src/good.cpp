// Fixture: every registered-name usage pattern the scanner accepts.
#include <string>

void all_good(const std::string& app) {
  obs::counter("good.counter").add();
  PEERSCOPE_METRIC_INC("good.counter");
  obs::histogram("good.hist", obs::size_bounds()).observe(1);
  obs::set_gauge("good.gauge", 1.0);
  PEERSCOPE_SPAN("simulate");
  // Dynamic name: the "run." literal concatenates onto a runtime app
  // name and must match the registry's `span run.<app>` entry.
  obs::Span run_span{"run." + app};
  // Trace hooks resolve against trace_names.def, not metric_names.def.
  PEERSCOPE_TRACE_INSTANT("good.instant");
  obs::trace_counter("good.sample", 1);
}
