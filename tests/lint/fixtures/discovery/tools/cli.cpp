// Fixture: exit-code constants checked against tools/exit_codes.def
// (the registry sub-check of the exit-code-uniqueness rule).
constexpr int kExitUsage = 2;      // registered + documented: clean
constexpr int kExitDegraded = 8;   // registered + documented: clean
constexpr int kExitRogue = 9;      // finding: not in exit_codes.def
constexpr int kExitDrifted = 11;   // finding: registry says 10
