// Trace-corruption tests: the strict readers must throw on every
// corruption class; the salvage readers must never throw, recover the
// valid prefix (resynchronising past bad records), and account exactly
// for what was lost.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "trace/io.hpp"
#include "trace/pcap.hpp"

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;
using util::SimTime;

class SalvageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_salvage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::vector<PacketRecord> sample_records(int n = 50) {
  std::vector<PacketRecord> records;
  for (int i = 0; i < n; ++i) {
    PacketRecord r;
    r.ts = SimTime::micros(i * 211);
    r.remote = Ipv4Addr{30, 1, 0, static_cast<std::uint8_t>(i % 200 + 1)};
    r.bytes = i % 2 ? 1250 : 96;
    r.dir = i % 2 ? Direction::kRx : Direction::kTx;
    r.kind = i % 2 ? sim::PacketKind::kVideo : sim::PacketKind::kSignaling;
    r.ttl = 110;
    records.push_back(r);
  }
  return records;
}

void patch_byte(const std::filesystem::path& path, std::streamoff offset,
                char value) {
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(offset);
  f.write(&value, 1);
}

// 16-byte header: magic(4) version(2) reserved(2) probe(4) count(4),
// then 19-byte records: ts(8) remote(4) bytes(4) dir(1) kind(1) ttl(1).
constexpr std::streamoff kRecordSize = 19;
constexpr std::streamoff kFirstDirOffset = 16 + 8 + 4 + 4;

TEST_F(SalvageTest, CleanFileMatchesStrictReader) {
  const auto path = dir_ / "clean.psct";
  const auto records = sample_records();
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, records);

  SalvageReport report;
  const TraceFile salvaged = read_trace_salvage(path, &report);
  const TraceFile strict = read_trace(path);

  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_recovered, records.size());
  EXPECT_EQ(salvaged.probe, strict.probe);
  ASSERT_EQ(salvaged.records.size(), strict.records.size());
  for (std::size_t i = 0; i < strict.records.size(); ++i) {
    EXPECT_EQ(salvaged.records[i].ts, strict.records[i].ts);
    EXPECT_EQ(salvaged.records[i].remote, strict.records[i].remote);
  }
}

TEST_F(SalvageTest, NullReportIsAccepted) {
  const auto path = dir_ / "noreport.psct";
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, sample_records());
  EXPECT_EQ(read_trace_salvage(path).records.size(), 50u);
}

TEST_F(SalvageTest, MissingFileStillThrows) {
  EXPECT_THROW((void)read_trace_salvage(dir_ / "absent.psct"),
               std::runtime_error);
}

TEST_F(SalvageTest, TruncatedHeaderRecoversNothing) {
  const auto path = dir_ / "hdr.psct";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path, std::ios::binary) << "PSC";
  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_TRUE(file.records.empty());
  EXPECT_FALSE(report.header_valid);
  EXPECT_EQ(report.bytes_discarded, 3u);
  EXPECT_FALSE(report.clean());
  // Strict reader agrees this is fatal.
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, BadMagicRecoversNothing) {
  const auto path = dir_ / "magic.psct";
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, sample_records());
  patch_byte(path, 0, 'X');
  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_TRUE(file.records.empty());
  EXPECT_FALSE(report.header_valid);
  EXPECT_EQ(report.bytes_discarded, std::filesystem::file_size(path));
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, WrongVersionRecoversNothing) {
  const auto path = dir_ / "version.psct";
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, sample_records());
  patch_byte(path, 4, 9);  // version field
  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_TRUE(file.records.empty());
  EXPECT_FALSE(report.header_valid);
  EXPECT_NE(report.note.find("version"), std::string::npos);
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, MidRecordTruncationKeepsValidPrefix) {
  const auto path = dir_ / "trunc.psct";
  const auto records = sample_records();
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, records);
  // Chop off the last record and a half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - kRecordSize - 7);

  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  ASSERT_EQ(file.records.size(), records.size() - 2);
  EXPECT_TRUE(report.header_valid);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.bytes_discarded, kRecordSize - 7u);
  EXPECT_EQ(file.records.back().ts, records[records.size() - 3].ts);
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, CorruptRecordIsSkippedWithResync) {
  const auto path = dir_ / "badrec.psct";
  const auto records = sample_records();
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, records);
  // Invalid direction byte in record 0 and record 3; fixed-size records
  // let parsing resynchronise on the very next record.
  patch_byte(path, kFirstDirOffset, 9);
  patch_byte(path, kFirstDirOffset + 3 * kRecordSize, 9);

  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_EQ(file.records.size(), records.size() - 2);
  EXPECT_EQ(report.records_skipped, 2u);
  EXPECT_EQ(report.records_recovered, records.size() - 2);
  EXPECT_FALSE(report.clean());
  // Neighbours of the corrupt records survived intact.
  EXPECT_EQ(file.records.front().ts, records[1].ts);
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, NegativeByteCountIsSkipped) {
  const auto path = dir_ / "negbytes.psct";
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, sample_records());
  // Set the sign bit of record 0's bytes field (offset 16 + 8 + 4 + 3).
  patch_byte(path, 16 + 8 + 4 + 3, static_cast<char>(0x80));
  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_EQ(file.records.size(), 49u);
}

TEST_F(SalvageTest, TrailingGarbageIsCountedNotParsed) {
  const auto path = dir_ / "garbage.psct";
  write_trace(path, Ipv4Addr{10, 0, 0, 1}, sample_records());
  {
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "spurious tail bytes";
  }
  SalvageReport report;
  const TraceFile file = read_trace_salvage(path, &report);
  EXPECT_EQ(file.records.size(), 50u);
  EXPECT_EQ(report.bytes_discarded, 19u);
  EXPECT_FALSE(report.truncated);
  EXPECT_NE(report.note.find("trailing"), std::string::npos);
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(SalvageTest, PcapSalvageMatchesStrictOnCleanFile) {
  const auto path = dir_ / "clean.pcap";
  const Ipv4Addr probe{10, 0, 0, 1};
  const auto records = sample_records();
  write_pcap(path, probe, records);

  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, probe, &report);
  const auto strict = read_pcap(path, probe);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(salvaged.size(), strict.size());
  for (std::size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(salvaged[i].ts, strict[i].ts);
    EXPECT_EQ(salvaged[i].remote, strict[i].remote);
    EXPECT_EQ(salvaged[i].bytes, strict[i].bytes);
  }
}

TEST_F(SalvageTest, PcapTruncatedTailKeepsPrefix) {
  const auto path = dir_ / "trunc.pcap";
  const Ipv4Addr probe{10, 0, 0, 1};
  write_pcap(path, probe, sample_records());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 11);

  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, probe, &report);
  EXPECT_EQ(salvaged.size(), 49u);
  EXPECT_TRUE(report.truncated);
  EXPECT_GT(report.bytes_discarded, 0u);
  EXPECT_THROW((void)read_pcap(path, probe), std::runtime_error);
}

// Default snaplen is 28, so each pcap record is 16 + 28 bytes and
// record i's header sits at 24 + i*44.
constexpr std::streamoff kPcapRecord = 44;

TEST_F(SalvageTest, PcapTruncatedFinalRecordHeaderIsAccounted) {
  // The file ends 7 bytes into the last record's 16-byte header — the
  // regression case where the salvage reader used to read past the
  // buffer instead of stopping at the partial header.
  const auto path = dir_ / "midhdr.pcap";
  const Ipv4Addr probe{10, 0, 0, 1};
  write_pcap(path, probe, sample_records());
  std::filesystem::resize_file(path, 24 + 49 * kPcapRecord + 7);

  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, probe, &report);
  EXPECT_EQ(salvaged.size(), 49u);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.bytes_discarded, 7u);
  EXPECT_THROW((void)read_pcap(path, probe), std::runtime_error);
}

TEST_F(SalvageTest, PcapOversizedInclLengthDoesNotOverread) {
  // A corrupt captured-length pointing past EOF must end the salvage,
  // not send the reader out of bounds.
  const auto path = dir_ / "incl.pcap";
  const Ipv4Addr probe{10, 0, 0, 1};
  write_pcap(path, probe, sample_records());
  const std::streamoff incl_at = 24 + 49 * kPcapRecord + 8;
  for (int i = 0; i < 4; ++i) {
    patch_byte(path, incl_at + i, '\xff');
  }

  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, probe, &report);
  EXPECT_EQ(salvaged.size(), 49u);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.bytes_discarded, 44u);  // the whole last record
  EXPECT_THROW((void)read_pcap(path, probe), std::runtime_error);
}

TEST_F(SalvageTest, PcapImplausibleOriginalLengthIsSkippedAlone) {
  // original_length of 0 would alias to a nonsense byte count; the
  // frame boundary holds, so salvage drops just that record.
  const auto path = dir_ / "orig.pcap";
  const Ipv4Addr probe{10, 0, 0, 1};
  write_pcap(path, probe, sample_records());
  const std::streamoff orig_at = 24 + 10 * kPcapRecord + 12;
  for (int i = 0; i < 4; ++i) {
    patch_byte(path, orig_at + i, '\0');
  }

  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, probe, &report);
  EXPECT_EQ(salvaged.size(), 49u);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_FALSE(report.truncated);
  EXPECT_THROW((void)read_pcap(path, probe), std::runtime_error);
}

TEST_F(SalvageTest, PcapBadGlobalHeaderRecoversNothing) {
  const auto path = dir_ / "hdr.pcap";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path, std::ios::binary) << "not a pcap";
  SalvageReport report;
  const auto salvaged = read_pcap_salvage(path, Ipv4Addr{10, 0, 0, 1},
                                          &report);
  EXPECT_TRUE(salvaged.empty());
  EXPECT_FALSE(report.header_valid);
}

}  // namespace
}  // namespace peerscope::trace
