#include "trace/sink.hpp"

#include <gtest/gtest.h>

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;
using util::SimTime;

const Ipv4Addr kProbe{10, 0, 0, 1};
const Ipv4Addr kRemote{20, 0, 0, 9};

TEST(ProbeSink, VideoTrainRxFeedsFlowsAndRecords) {
  ProbeSink sink{kProbe, /*keep_records=*/true};
  const std::vector<SimTime> arrivals{SimTime::micros(100),
                                      SimTime::micros(200),
                                      SimTime::micros(350)};
  sink.video_train_rx(kRemote, arrivals, 1250, 110);

  const FlowStats* f = sink.flows().find(kRemote);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rx_video_pkts, 3u);
  EXPECT_EQ(f->rx_video_bytes, 3750u);
  EXPECT_EQ(f->min_rx_video_ipg_ns, 100'000);
  EXPECT_EQ(f->rx_ttl, 110);
  ASSERT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.records()[0].dir, Direction::kRx);
}

TEST(ProbeSink, VideoTrainTxUsesInitialTtl) {
  ProbeSink sink{kProbe, true};
  const std::vector<SimTime> departures{SimTime::micros(10),
                                        SimTime::micros(20)};
  sink.video_train_tx(kRemote, departures, 1250);
  const FlowStats* f = sink.flows().find(kRemote);
  EXPECT_EQ(f->tx_video_pkts, 2u);
  EXPECT_FALSE(f->saw_rx);
  EXPECT_EQ(sink.records()[0].ttl, sim::kInitialTtl);
}

TEST(ProbeSink, SignalingBothDirections) {
  ProbeSink sink{kProbe, true};
  sink.signaling_tx(kRemote, SimTime::micros(1), 120);
  sink.signaling_rx(kRemote, SimTime::micros(500), 120, 105);
  const FlowStats* f = sink.flows().find(kRemote);
  EXPECT_EQ(f->tx_pkts, 1u);
  EXPECT_EQ(f->rx_pkts, 1u);
  EXPECT_EQ(f->rx_video_pkts, 0u);
  EXPECT_EQ(f->rx_ttl, 105);
}

TEST(ProbeSink, WithoutKeepRecordsStoresNothing) {
  ProbeSink sink{kProbe, false};
  sink.signaling_tx(kRemote, SimTime::micros(1), 120);
  EXPECT_TRUE(sink.records().empty());
  EXPECT_EQ(sink.flows().flow_count(), 1u);
  EXPECT_FALSE(sink.keeps_records());
}

TEST(ProbeSink, SortRecordsOrdersByTime) {
  ProbeSink sink{kProbe, true};
  sink.signaling_tx(kRemote, SimTime::micros(500), 120);
  sink.signaling_rx(kRemote, SimTime::micros(100), 120, 105);
  sink.sort_records();
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_LT(sink.records()[0].ts, sink.records()[1].ts);
}

TEST(ProbeSink, OfflineRebuildMatchesOnlineFlows) {
  ProbeSink sink{kProbe, true};
  const std::vector<SimTime> arrivals{SimTime::micros(100),
                                      SimTime::micros(220)};
  sink.video_train_rx(kRemote, arrivals, 1250, 110);
  sink.signaling_tx(kRemote, SimTime::micros(50), 120);

  const FlowTable rebuilt = FlowTable::from_records(kProbe, sink.records());
  const FlowStats* off = rebuilt.find(kRemote);
  const FlowStats* on = sink.flows().find(kRemote);
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->rx_video_pkts, on->rx_video_pkts);
  EXPECT_EQ(off->min_rx_video_ipg_ns, on->min_rx_video_ipg_ns);
  EXPECT_EQ(off->tx_bytes, on->tx_bytes);
}

}  // namespace
}  // namespace peerscope::trace
