#include "trace/flow.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;
using util::SimTime;

const Ipv4Addr kProbe{10, 0, 0, 1};
const Ipv4Addr kPeerA{20, 0, 0, 1};
const Ipv4Addr kPeerB{20, 0, 0, 2};

PacketRecord video_rx(Ipv4Addr remote, std::int64_t ts_ns,
                      std::uint8_t ttl = 110, std::int32_t bytes = 1250) {
  return {SimTime{ts_ns}, remote, bytes, Direction::kRx,
          sim::PacketKind::kVideo, ttl};
}

PacketRecord sig_tx(Ipv4Addr remote, std::int64_t ts_ns,
                    std::int32_t bytes = 120) {
  return {SimTime{ts_ns}, remote, bytes, Direction::kTx,
          sim::PacketKind::kSignaling, 128};
}

TEST(FlowTable, AggregatesPerRemote) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1000));
  table.add(video_rx(kPeerA, 2000));
  table.add(sig_tx(kPeerA, 3000));
  table.add(video_rx(kPeerB, 1500));

  EXPECT_EQ(table.flow_count(), 2u);
  const FlowStats* a = table.find(kPeerA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rx_pkts, 2u);
  EXPECT_EQ(a->rx_bytes, 2500u);
  EXPECT_EQ(a->rx_video_pkts, 2u);
  EXPECT_EQ(a->tx_pkts, 1u);
  EXPECT_EQ(a->tx_bytes, 120u);
  EXPECT_EQ(a->tx_video_pkts, 0u);
}

TEST(FlowTable, MinIpgTracksConsecutiveVideoGaps) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1'000'000));
  table.add(video_rx(kPeerA, 1'500'000));   // gap 500 us
  table.add(video_rx(kPeerA, 9'000'000));   // gap 7.5 ms
  table.add(video_rx(kPeerA, 9'100'000));   // gap 100 us  <- min
  const FlowStats* a = table.find(kPeerA);
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->has_min_ipg());
  EXPECT_EQ(a->min_rx_video_ipg_ns, 100'000);
}

TEST(FlowTable, MinIpgUndefinedWithOneVideoPacket) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1000));
  const FlowStats* a = table.find(kPeerA);
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->has_min_ipg());
}

TEST(FlowTable, SignalingDoesNotAffectIpg) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1'000'000));
  PacketRecord sig = video_rx(kPeerA, 1'000'100);
  sig.kind = sim::PacketKind::kSignaling;
  table.add(sig);
  table.add(video_rx(kPeerA, 3'000'000));
  const FlowStats* a = table.find(kPeerA);
  EXPECT_EQ(a->min_rx_video_ipg_ns, 2'000'000);
}

TEST(FlowTable, IpgIsPerRemote) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1'000'000));
  table.add(video_rx(kPeerB, 1'000'050));
  table.add(video_rx(kPeerA, 2'000'000));
  EXPECT_EQ(table.find(kPeerA)->min_rx_video_ipg_ns, 1'000'000);
  EXPECT_FALSE(table.find(kPeerB)->has_min_ipg());
}

TEST(FlowTable, TracksRxTtlAndTimestamps) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 5000, 107));
  table.add(sig_tx(kPeerA, 9000));
  const FlowStats* a = table.find(kPeerA);
  EXPECT_TRUE(a->saw_rx);
  EXPECT_EQ(a->rx_ttl, 107);
  EXPECT_EQ(a->first_ts.ns(), 5000);
  EXPECT_EQ(a->last_ts.ns(), 9000);
}

TEST(FlowTable, TxOnlyFlowHasNoRxTtl) {
  FlowTable table{kProbe};
  table.add(sig_tx(kPeerA, 1000));
  EXPECT_FALSE(table.find(kPeerA)->saw_rx);
}

TEST(FlowTable, Totals) {
  FlowTable table{kProbe};
  table.add(video_rx(kPeerA, 1000));
  table.add(video_rx(kPeerB, 2000));
  table.add(sig_tx(kPeerA, 3000));
  EXPECT_EQ(table.total_rx_pkts(), 2u);
  EXPECT_EQ(table.total_rx_bytes(), 2500u);
  EXPECT_EQ(table.total_tx_pkts(), 1u);
  EXPECT_EQ(table.total_tx_bytes(), 120u);
}

TEST(FlowTable, OfflineEqualsOnline) {
  // Property: feeding shuffled records through from_records (which
  // sorts) produces identical aggregates to in-order online feeding.
  util::Rng rng{99};
  std::vector<PacketRecord> records;
  std::int64_t ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += static_cast<std::int64_t>(rng.below(500'000)) + 1;
    const Ipv4Addr remote = rng.chance(0.5) ? kPeerA : kPeerB;
    PacketRecord r;
    r.ts = SimTime{ts};
    r.remote = remote;
    r.bytes = rng.chance(0.8) ? 1250 : 120;
    r.kind = r.bytes == 1250 ? sim::PacketKind::kVideo
                             : sim::PacketKind::kSignaling;
    r.dir = rng.chance(0.7) ? Direction::kRx : Direction::kTx;
    r.ttl = static_cast<std::uint8_t>(100 + rng.below(20));
    records.push_back(r);
  }

  FlowTable online{kProbe};
  for (const auto& r : records) online.add(r);

  std::vector<PacketRecord> shuffled = records;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  const FlowTable offline = FlowTable::from_records(kProbe, shuffled);

  ASSERT_EQ(offline.flow_count(), online.flow_count());
  for (const auto& [remote, off] : offline.flows()) {
    const FlowStats* on = online.find(remote);
    ASSERT_NE(on, nullptr);
    EXPECT_EQ(off.rx_pkts, on->rx_pkts);
    EXPECT_EQ(off.rx_bytes, on->rx_bytes);
    EXPECT_EQ(off.tx_pkts, on->tx_pkts);
    EXPECT_EQ(off.rx_video_pkts, on->rx_video_pkts);
    EXPECT_EQ(off.min_rx_video_ipg_ns, on->min_rx_video_ipg_ns);
    EXPECT_EQ(off.first_ts, on->first_ts);
    EXPECT_EQ(off.last_ts, on->last_ts);
  }
  EXPECT_EQ(offline.total_rx_bytes(), online.total_rx_bytes());
  EXPECT_EQ(offline.total_tx_bytes(), online.total_tx_bytes());
}

TEST(RecordOrdering, TotalOrder) {
  const PacketRecord a = video_rx(kPeerA, 100);
  const PacketRecord b = video_rx(kPeerA, 200);
  EXPECT_TRUE(record_before(a, b));
  EXPECT_FALSE(record_before(b, a));
  const PacketRecord c = video_rx(kPeerB, 100);
  EXPECT_TRUE(record_before(a, c));  // same ts, smaller remote first
  PacketRecord d = a;
  d.dir = Direction::kTx;
  EXPECT_TRUE(record_before(a, d));  // RX before TX at equal (ts, remote)
}

}  // namespace
}  // namespace peerscope::trace
