// PSBT framing: roundtrip fidelity, strict-reader rejection of every
// corruption class, and the salvage reader's accounting invariant —
// recovered + skipped always equals the header's declared count when
// the header itself is intact.
#include "trace/binary_format.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "util/crc32c.hpp"

namespace peerscope::trace {
namespace {

constexpr std::size_t kHeaderSize = 28;
constexpr std::size_t kMarkerSize = 16;
constexpr std::size_t kFrameSize = 8 + 19;  // len + crc + payload

class BinaryFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_psbt_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<PacketRecord> make_records(std::size_t n) {
    std::vector<PacketRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      PacketRecord r;
      r.ts = util::SimTime{static_cast<std::int64_t>(1000 + i * 37)};
      r.remote = net::Ipv4Addr{static_cast<std::uint32_t>(0x0a000001 + i)};
      r.bytes = static_cast<std::int32_t>(40 + i % 1400);
      r.dir = i % 2 == 0 ? Direction::kRx : Direction::kTx;
      r.kind = i % 3 == 0 ? sim::PacketKind::kSignaling
                          : sim::PacketKind::kVideo;
      r.ttl = static_cast<std::uint8_t>(i % 64);
      records.push_back(r);
    }
    return records;
  }

  std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void dump(const std::filesystem::path& path, const std::string& buf) {
    // peerscope-lint: allow(no-raw-artifact-io): tests plant corrupt bytes
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }

  /// Byte offset of record `i`'s frame for files written with
  /// `interval` (markers precede record i when i % interval == 0,
  /// i > 0).
  static std::size_t frame_offset(std::size_t i, std::uint32_t interval) {
    const std::size_t markers = interval > 0 ? i / interval : 0;
    return kHeaderSize + i * kFrameSize + markers * kMarkerSize;
  }

  static void expect_equal(const std::vector<PacketRecord>& a,
                           const std::vector<PacketRecord>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].ts.ns(), b[i].ts.ns()) << "record " << i;
      EXPECT_EQ(a[i].remote, b[i].remote) << "record " << i;
      EXPECT_EQ(a[i].bytes, b[i].bytes) << "record " << i;
      EXPECT_EQ(a[i].dir, b[i].dir) << "record " << i;
      EXPECT_EQ(a[i].kind, b[i].kind) << "record " << i;
      EXPECT_EQ(a[i].ttl, b[i].ttl) << "record " << i;
    }
  }

  std::filesystem::path dir_;
};

// --- clean roundtrip --------------------------------------------------

TEST_F(BinaryFormatTest, RoundtripPreservesEveryField) {
  const auto path = dir_ / "trace.psct";
  const auto records = make_records(1000);
  write_trace_binary(path, net::Ipv4Addr{0x0afe0001}, records, 64);
  const TraceFile got = read_trace_binary(path);
  EXPECT_EQ(got.probe, net::Ipv4Addr{0x0afe0001});
  expect_equal(records, got.records);
}

TEST_F(BinaryFormatTest, WritingTwiceIsByteIdentical) {
  const auto records = make_records(300);
  write_trace_binary(dir_ / "a.psct", net::Ipv4Addr{1}, records);
  write_trace_binary(dir_ / "b.psct", net::Ipv4Addr{1}, records);
  EXPECT_EQ(slurp(dir_ / "a.psct"), slurp(dir_ / "b.psct"));
}

TEST_F(BinaryFormatTest, EmptyTraceRoundtrips) {
  const auto path = dir_ / "empty.psct";
  write_trace_binary(path, net::Ipv4Addr{42}, {});
  const TraceFile got = read_trace_binary(path);
  EXPECT_EQ(got.probe, net::Ipv4Addr{42});
  EXPECT_TRUE(got.records.empty());
  EXPECT_EQ(slurp(path).size(), kHeaderSize);
}

TEST_F(BinaryFormatTest, LayoutMatchesTheDocumentedSizes) {
  // 10 records, interval 4: markers before records 4 and 8.
  const auto path = dir_ / "layout.psct";
  write_trace_binary(path, net::Ipv4Addr{1}, make_records(10), 4);
  EXPECT_EQ(slurp(path).size(),
            kHeaderSize + 10 * kFrameSize + 2 * kMarkerSize);
}

TEST_F(BinaryFormatTest, ZeroIntervalWritesNoMarkers) {
  const auto path = dir_ / "nomark.psct";
  write_trace_binary(path, net::Ipv4Addr{1}, make_records(10), 0);
  EXPECT_EQ(slurp(path).size(), kHeaderSize + 10 * kFrameSize);
  expect_equal(make_records(10), read_trace_binary(path).records);
}

// --- strict reader ----------------------------------------------------

TEST_F(BinaryFormatTest, StrictRejectsBadMagicVersionAndHeaderCrc) {
  const auto path = dir_ / "hdr.psct";
  write_trace_binary(path, net::Ipv4Addr{1}, make_records(4));
  const std::string clean = slurp(path);

  std::string bad = clean;
  bad[0] = 'X';
  EXPECT_THROW((void)parse_trace_binary(bad, "t"), std::runtime_error);

  bad = clean;
  bad[4] = 9;  // version
  EXPECT_THROW((void)parse_trace_binary(bad, "t"), std::runtime_error);

  bad = clean;
  bad[10] ^= 0x01;  // probe byte: header CRC no longer matches
  EXPECT_THROW((void)parse_trace_binary(bad, "t"), std::runtime_error);
}

TEST_F(BinaryFormatTest, StrictRejectsPayloadCorruptionAndTruncation) {
  const auto path = dir_ / "body.psct";
  write_trace_binary(path, net::Ipv4Addr{1}, make_records(8), 4);
  const std::string clean = slurp(path);

  std::string bad = clean;
  bad[frame_offset(5, 4) + 8] ^= 0x40;  // payload byte of record 5
  EXPECT_THROW((void)parse_trace_binary(bad, "t"), std::runtime_error);

  EXPECT_THROW(
      (void)parse_trace_binary(clean.substr(0, clean.size() - 3), "t"),
      std::runtime_error);

  EXPECT_THROW((void)parse_trace_binary(clean + "junk", "t"),
               std::runtime_error);
}

TEST_F(BinaryFormatTest, StrictAcceptsWhatItWrote) {
  const auto path = dir_ / "ok.psct";
  write_trace_binary(path, net::Ipv4Addr{1}, make_records(8), 4);
  EXPECT_NO_THROW((void)read_trace_binary(path));
}

// --- salvage reader ---------------------------------------------------

TEST_F(BinaryFormatTest, SalvageOnCleanFileIsClean) {
  const auto path = dir_ / "clean.psct";
  const auto records = make_records(600);
  write_trace_binary(path, net::Ipv4Addr{7}, records);
  SalvageReport rep;
  const TraceFile got = read_trace_binary_salvage(path, &rep);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.records_recovered, 600u);
  EXPECT_EQ(rep.records_skipped, 0u);
  expect_equal(records, got.records);
}

TEST_F(BinaryFormatTest, SalvageResynchronisesAtTheNextMarker) {
  // Interval 16, corrupt record 20's payload: records 20..31 are lost
  // to the marker at 32, everything else survives.
  const auto path = dir_ / "resync.psct";
  const auto records = make_records(100);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 16);
  std::string buf = slurp(path);
  buf[frame_offset(20, 16) + 8] ^= 0x01;

  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(buf, &rep);
  EXPECT_TRUE(rep.header_valid);
  EXPECT_FALSE(rep.truncated);
  EXPECT_EQ(rep.records_recovered, 88u);
  EXPECT_EQ(rep.records_skipped, 12u);
  EXPECT_EQ(rep.records_recovered + rep.records_skipped, records.size());
  EXPECT_GT(rep.bytes_discarded, 0u);
  // The recovered stream is records 0..19 then 32..99, in order.
  ASSERT_EQ(got.records.size(), 88u);
  EXPECT_EQ(got.records[19].ts.ns(), records[19].ts.ns());
  EXPECT_EQ(got.records[20].ts.ns(), records[32].ts.ns());
  EXPECT_EQ(got.records.back().ts.ns(), records.back().ts.ns());
}

TEST_F(BinaryFormatTest, SalvageSurvivesACorruptSyncMarker) {
  // Damaging the marker itself (before record 16) poisons 16..31; the
  // marker at 32 resyncs.
  const auto path = dir_ / "marker.psct";
  const auto records = make_records(48);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 16);
  std::string buf = slurp(path);
  buf[frame_offset(16, 16) - kMarkerSize] ^= 0xff;  // marker magic

  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(buf, &rep);
  EXPECT_EQ(rep.records_recovered, 32u);
  EXPECT_EQ(rep.records_skipped, 16u);
  EXPECT_EQ(got.records[16].ts.ns(), records[32].ts.ns());
}

TEST_F(BinaryFormatTest, CorruptLengthFieldAlsoResynchronises) {
  // A flipped frame-length bit must not send the reader off to parse
  // noise — the implausible length poisons the region instead.
  const auto path = dir_ / "len.psct";
  const auto records = make_records(64);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 16);
  std::string buf = slurp(path);
  buf[frame_offset(3, 16) + 1] ^= 0x20;  // length now huge

  SalvageReport rep;
  (void)parse_trace_binary_salvage(buf, &rep);
  EXPECT_EQ(rep.records_recovered + rep.records_skipped, 64u);
  EXPECT_EQ(rep.records_recovered, 3u + 48u);  // 0..2 and 16..63
}

TEST_F(BinaryFormatTest, CrcValidOutOfDomainRecordIsSkippedAlone) {
  // Rewrite record 5's dir field to 9 and patch the frame CRC so the
  // checksum passes: the boundary holds, only that record drops.
  const auto path = dir_ / "domain.psct";
  const auto records = make_records(12);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 0);
  std::string buf = slurp(path);
  const std::size_t frame = frame_offset(5, 0);
  buf[frame + 8 + 16] = 9;  // dir byte within the payload
  const std::uint32_t crc = util::crc32c(
      std::string_view{buf}.substr(frame + 8, 19));
  std::memcpy(&buf[frame + 4], &crc, sizeof crc);

  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(buf, &rep);
  EXPECT_EQ(rep.records_recovered, 11u);
  EXPECT_EQ(rep.records_skipped, 1u);
  EXPECT_EQ(rep.bytes_discarded, 0u);
  EXPECT_FALSE(rep.truncated);
  EXPECT_EQ(got.records[5].ts.ns(), records[6].ts.ns());
}

TEST_F(BinaryFormatTest, CorruptionWithoutMarkersLosesTheTail) {
  const auto path = dir_ / "tail.psct";
  const auto records = make_records(32);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 0);
  std::string buf = slurp(path);
  buf[frame_offset(10, 0) + 8] ^= 0x01;

  SalvageReport rep;
  (void)parse_trace_binary_salvage(buf, &rep);
  EXPECT_EQ(rep.records_recovered, 10u);
  EXPECT_EQ(rep.records_skipped, 22u);
  EXPECT_TRUE(rep.truncated);
}

TEST_F(BinaryFormatTest, TruncationMidRecordIsAccounted) {
  const auto path = dir_ / "trunc.psct";
  const auto records = make_records(40);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 16);
  const std::string clean = slurp(path);
  // Cut inside record 25's payload.
  const std::string cut = clean.substr(0, frame_offset(25, 16) + 12);

  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(cut, &rep);
  EXPECT_TRUE(rep.truncated);
  EXPECT_EQ(rep.records_recovered, 25u);
  EXPECT_EQ(rep.records_skipped, 15u);
  EXPECT_EQ(rep.bytes_discarded, 12u);  // the dangling partial frame
  EXPECT_EQ(got.records.size(), 25u);
}

TEST_F(BinaryFormatTest, UnusableHeaderSalvagesNothing) {
  std::string buf = "PSBT but not really a valid header at all";
  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(buf, &rep);
  EXPECT_FALSE(rep.header_valid);
  EXPECT_EQ(rep.records_recovered, 0u);
  EXPECT_EQ(rep.bytes_discarded, buf.size());
  EXPECT_TRUE(got.records.empty());
}

TEST_F(BinaryFormatTest, TrailingGarbageIsDiscardedNotParsed) {
  const auto path = dir_ / "garbage.psct";
  const auto records = make_records(6);
  write_trace_binary(path, net::Ipv4Addr{7}, records, 0);
  std::string buf = slurp(path) + "spurious bytes";

  SalvageReport rep;
  const TraceFile got = parse_trace_binary_salvage(buf, &rep);
  EXPECT_EQ(rep.records_recovered, 6u);
  EXPECT_EQ(rep.records_skipped, 0u);
  EXPECT_EQ(rep.bytes_discarded, std::strlen("spurious bytes"));
  EXPECT_EQ(got.records.size(), 6u);
}

}  // namespace
}  // namespace peerscope::trace
