// Corruption robustness: random byte flips and truncations of trace
// and pcap files must never crash the readers — they either throw a
// clean std::runtime_error or parse (a flip inside a record's payload
// fields is legitimate data corruption the format cannot detect).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "util/rng.hpp"

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_fuzz_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string read_all(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_all(const std::filesystem::path& path, const std::string& data) {
    // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::filesystem::path dir_;
};

std::vector<PacketRecord> sample_records() {
  std::vector<PacketRecord> records;
  for (int i = 0; i < 40; ++i) {
    PacketRecord r;
    r.ts = util::SimTime::micros(i * 211);
    r.remote = Ipv4Addr{20, 0, 0, static_cast<std::uint8_t>(i + 1)};
    r.bytes = i % 2 ? 1250 : 120;
    r.dir = i % 2 ? Direction::kRx : Direction::kTx;
    r.kind = i % 2 ? sim::PacketKind::kVideo : sim::PacketKind::kSignaling;
    r.ttl = static_cast<std::uint8_t>(90 + i);
    records.push_back(r);
  }
  return records;
}

TEST_F(FuzzTest, TraceReaderSurvivesBitFlips) {
  const Ipv4Addr probe{10, 0, 0, 1};
  const auto original_path = dir_ / "clean.psct";
  write_trace(original_path, probe, sample_records());
  const std::string clean = read_all(original_path);

  util::Rng rng{1234};
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = clean;
    const std::size_t position = rng.below(mutated.size());
    mutated[position] = static_cast<char>(
        static_cast<std::uint8_t>(mutated[position]) ^
        (1u << rng.below(8)));
    const auto path = dir_ / "mutated.psct";
    write_all(path, mutated);
    try {
      const TraceFile file = read_trace(path);
      // When it parses, the structure must still be coherent.
      for (const auto& record : file.records) {
        EXPECT_LE(static_cast<int>(record.dir), 1);
        EXPECT_LE(static_cast<int>(record.kind), 1);
      }
      ++parsed;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200);
  // Header/count corruptions must be caught at least sometimes.
  EXPECT_GT(rejected, 0);
}

TEST_F(FuzzTest, TraceReaderSurvivesTruncations) {
  const Ipv4Addr probe{10, 0, 0, 1};
  const auto original_path = dir_ / "clean.psct";
  write_trace(original_path, probe, sample_records());
  const std::string clean = read_all(original_path);

  util::Rng rng{77};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = rng.below(clean.size());
    const auto path = dir_ / "short.psct";
    write_all(path, clean.substr(0, keep));
    // Any truncation breaks the size invariant -> must throw.
    EXPECT_THROW((void)read_trace(path), std::runtime_error) << keep;
  }
}

TEST_F(FuzzTest, PcapReaderSurvivesBitFlips) {
  const Ipv4Addr probe{10, 0, 0, 1};
  const auto original_path = dir_ / "clean.pcap";
  write_pcap(original_path, probe, sample_records());
  const std::string clean = read_all(original_path);

  util::Rng rng{4321};
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = clean;
    const std::size_t position = rng.below(mutated.size());
    mutated[position] = static_cast<char>(
        static_cast<std::uint8_t>(mutated[position]) ^
        (1u << rng.below(8)));
    const auto path = dir_ / "mutated.pcap";
    write_all(path, mutated);
    try {
      (void)read_pcap(path, probe);  // parse or throw, never crash
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST_F(FuzzTest, MetadataStyleGarbageNeverParses) {
  util::Rng rng{5};
  for (int trial = 0; trial < 40; ++trial) {
    std::string garbage;
    const std::size_t length = 1 + rng.below(600);
    for (std::size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    const auto path = dir_ / "garbage.psct";
    write_all(path, garbage);
    EXPECT_THROW((void)read_trace(path), std::runtime_error);
  }
}

}  // namespace
}  // namespace peerscope::trace
