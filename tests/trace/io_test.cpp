#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;
using util::SimTime;

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

std::vector<PacketRecord> sample_records() {
  std::vector<PacketRecord> records;
  for (int i = 0; i < 100; ++i) {
    PacketRecord r;
    r.ts = SimTime::micros(i * 137);
    r.remote = Ipv4Addr{20, 0, static_cast<std::uint8_t>(i % 3),
                        static_cast<std::uint8_t>(i + 1)};
    r.bytes = i % 2 ? 1250 : 120;
    r.dir = i % 2 ? Direction::kRx : Direction::kTx;
    r.kind = i % 2 ? sim::PacketKind::kVideo : sim::PacketKind::kSignaling;
    r.ttl = static_cast<std::uint8_t>(100 + i % 28);
    records.push_back(r);
  }
  return records;
}

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const Ipv4Addr probe{10, 0, 0, 1};
  const auto records = sample_records();
  const auto path = dir_ / "probe.psct";
  write_trace(path, probe, records);

  const TraceFile loaded = read_trace(path);
  EXPECT_EQ(loaded.probe, probe);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].ts, records[i].ts);
    EXPECT_EQ(loaded.records[i].remote, records[i].remote);
    EXPECT_EQ(loaded.records[i].bytes, records[i].bytes);
    EXPECT_EQ(loaded.records[i].dir, records[i].dir);
    EXPECT_EQ(loaded.records[i].kind, records[i].kind);
    EXPECT_EQ(loaded.records[i].ttl, records[i].ttl);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const auto path = dir_ / "empty.psct";
  write_trace(path, Ipv4Addr{1, 2, 3, 4}, {});
  const TraceFile loaded = read_trace(path);
  EXPECT_EQ(loaded.probe, (Ipv4Addr{1, 2, 3, 4}));
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_trace(dir_ / "nonexistent.psct"),
               std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  const auto path = dir_ / "bad.psct";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "this is not a trace file at all, not even close";
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedHeaderThrows) {
  const auto path = dir_ / "short.psct";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "abc";
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyThrows) {
  const auto path = dir_ / "truncated.psct";
  write_trace(path, Ipv4Addr{1, 2, 3, 4}, sample_records());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, CorruptEnumThrows) {
  const auto path = dir_ / "corrupt.psct";
  std::vector<PacketRecord> records = sample_records();
  write_trace(path, Ipv4Addr{1, 2, 3, 4}, records);
  // Flip the first record's direction byte (offset: 16 header + 8 ts +
  // 4 remote + 4 bytes = 32) to an invalid value.
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(32);
  const char bad = 9;
  f.write(&bad, 1);
  f.close();
  EXPECT_THROW((void)read_trace(path), std::runtime_error);
}

TEST_F(TraceIoTest, CsvExport) {
  const auto path = dir_ / "trace.csv";
  std::vector<PacketRecord> records;
  PacketRecord r;
  r.ts = SimTime::millis(5);
  r.remote = Ipv4Addr{20, 0, 0, 7};
  r.bytes = 1250;
  r.dir = Direction::kRx;
  r.kind = sim::PacketKind::kVideo;
  r.ttl = 110;
  records.push_back(r);
  write_trace_csv(path, Ipv4Addr{10, 0, 0, 1}, records);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "# probe=10.0.0.1");
  std::getline(in, line);
  EXPECT_EQ(line, "ts_ns,remote,dir,kind,bytes,ttl");
  std::getline(in, line);
  EXPECT_EQ(line, "5000000,20.0.0.7,rx,video,1250,110");
}

}  // namespace
}  // namespace peerscope::trace
