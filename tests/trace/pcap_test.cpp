#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "sim/packet.hpp"

namespace peerscope::trace {
namespace {

using net::Ipv4Addr;
using util::SimTime;

const Ipv4Addr kProbe{10, 0, 0, 1};
const Ipv4Addr kRemote{20, 1, 2, 3};

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("peerscope_pcap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

std::vector<PacketRecord> sample() {
  std::vector<PacketRecord> records;
  PacketRecord rx;
  rx.ts = SimTime::millis(1500);
  rx.remote = kRemote;
  rx.bytes = 1250;
  rx.dir = Direction::kRx;
  rx.kind = sim::PacketKind::kVideo;
  rx.ttl = 109;
  records.push_back(rx);

  PacketRecord tx;
  tx.ts = SimTime::millis(1501);
  tx.remote = kRemote;
  tx.bytes = 120;
  tx.dir = Direction::kTx;
  tx.kind = sim::PacketKind::kSignaling;
  tx.ttl = sim::kInitialTtl;
  records.push_back(tx);
  return records;
}

TEST_F(PcapTest, RoundTripPreservesFields) {
  const auto path = dir_ / "probe.pcap";
  write_pcap(path, kProbe, sample());
  const auto loaded = read_pcap(path, kProbe);
  ASSERT_EQ(loaded.size(), 2u);

  EXPECT_EQ(loaded[0].dir, Direction::kRx);
  EXPECT_EQ(loaded[0].remote, kRemote);
  EXPECT_EQ(loaded[0].bytes, 1250);
  EXPECT_EQ(loaded[0].ttl, 109);
  EXPECT_EQ(loaded[0].kind, sim::PacketKind::kVideo);
  // Timestamps round to microseconds in pcap.
  EXPECT_EQ(loaded[0].ts.ns(), SimTime::millis(1500).ns());

  EXPECT_EQ(loaded[1].dir, Direction::kTx);
  EXPECT_EQ(loaded[1].bytes, 120);
  EXPECT_EQ(loaded[1].kind, sim::PacketKind::kSignaling);
}

TEST_F(PcapTest, GlobalHeaderIsStandard) {
  const auto path = dir_ / "hdr.pcap";
  write_pcap(path, kProbe, sample());
  std::ifstream in(path, std::ios::binary);
  std::uint8_t header[24];
  in.read(reinterpret_cast<char*>(header), 24);
  ASSERT_TRUE(in.good());
  // Little-endian microsecond magic.
  EXPECT_EQ(header[0], 0xd4);
  EXPECT_EQ(header[1], 0xc3);
  EXPECT_EQ(header[2], 0xb2);
  EXPECT_EQ(header[3], 0xa1);
  // Version 2.4.
  EXPECT_EQ(header[4], 2);
  EXPECT_EQ(header[6], 4);
  // Link type 101 (raw IP).
  EXPECT_EQ(header[20], 101);
}

TEST_F(PcapTest, Ipv4ChecksumValidates) {
  const auto path = dir_ / "ck.pcap";
  write_pcap(path, kProbe, sample());
  std::ifstream in(path, std::ios::binary);
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  // First packet's IP header begins after 24B global + 16B record hdr.
  const auto* ip = reinterpret_cast<const std::uint8_t*>(buf.data() + 40);
  // Checksum over a valid header (checksum field included) is 0.
  EXPECT_EQ(ipv4_header_checksum(ip, 20), 0);
  EXPECT_EQ(ip[0], 0x45);
  EXPECT_EQ(ip[9], 17);  // UDP
}

TEST_F(PcapTest, EmptyCapture) {
  const auto path = dir_ / "empty.pcap";
  write_pcap(path, kProbe, {});
  EXPECT_TRUE(read_pcap(path, kProbe).empty());
  EXPECT_EQ(std::filesystem::file_size(path), 24u);
}

TEST_F(PcapTest, ReaderRejectsGarbage) {
  const auto path = dir_ / "bad.pcap";
  // peerscope-lint: allow(no-raw-artifact-io): writes a test fixture
  std::ofstream(path) << "definitely not a pcap file, not even trying";
  EXPECT_THROW((void)read_pcap(path, kProbe), std::runtime_error);
}

TEST_F(PcapTest, ReaderRejectsTruncatedPacket) {
  const auto path = dir_ / "trunc.pcap";
  write_pcap(path, kProbe, sample());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 3);
  EXPECT_THROW((void)read_pcap(path, kProbe), std::runtime_error);
}

TEST_F(PcapTest, ReaderRejectsForeignPackets) {
  const auto path = dir_ / "foreign.pcap";
  write_pcap(path, kProbe, sample());
  // Reading with the wrong probe address: packets involve neither
  // endpoint claimed.
  EXPECT_THROW((void)read_pcap(path, Ipv4Addr{9, 9, 9, 9}),
               std::runtime_error);
}

TEST(Checksum, Rfc1071KnownVector) {
  // Canonical example header from RFC 1071 discussions.
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40,
                                 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
                                 0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c};
  EXPECT_EQ(ipv4_header_checksum(header, 20), 0xb1e6);
}

}  // namespace
}  // namespace peerscope::trace
