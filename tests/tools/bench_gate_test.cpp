// Perf-trajectory gate tests (tools/bench_gate.hpp): snapshot parsing
// of the exact dialect bench::BenchJsonSession writes, the regression
// budget math behind `peerscope bench-diff`, and the markdown
// rendering behind `peerscope bench-trajectory`.
//
// The literals below are example documents, not schema uses.
// peerscope-lint: allow-file(schema-version-consistency)
#include "bench_gate.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace peerscope::tools {
namespace {

using ::testing::HasSubstr;
using ::testing::Not;

constexpr const char* kV2Doc =
    "{\"schema\":\"peerscope.bench/2\",\"bench\":\"bench_table2\","
    "\"wall_s\":12.5,\"events_executed\":2500000,"
    "\"events_per_s\":200000,\"peak_rss_kb\":65536,\"phases\":["
    "{\"path\":\"run.PPLive\",\"count\":1,\"total_ns\":9000000000,"
    "\"self_ns\":8000000000},"
    "{\"path\":\"run.PPLive.swarm_run\",\"count\":1,"
    "\"total_ns\":1000000000,\"self_ns\":1000000000}]}\n";

BenchSnapshot sample(double wall_s, double events_per_s) {
  BenchSnapshot out;
  out.bench = "bench_table2";
  out.wall_s = wall_s;
  out.events_executed = 1000;
  out.events_per_s = events_per_s;
  out.peak_rss_kb = 1024;
  return out;
}

TEST(BenchSnapshotParse, ReadsEveryHeadlineFieldAndAllPhases) {
  const BenchSnapshot snap = parse_bench_snapshot(kV2Doc);
  EXPECT_EQ(snap.schema, "peerscope.bench/2");
  EXPECT_EQ(snap.bench, "bench_table2");
  EXPECT_DOUBLE_EQ(snap.wall_s, 12.5);
  EXPECT_EQ(snap.events_executed, 2'500'000u);
  EXPECT_DOUBLE_EQ(snap.events_per_s, 200'000.0);
  EXPECT_EQ(snap.peak_rss_kb, 65'536u);
  ASSERT_EQ(snap.phases.size(), 2u);
  EXPECT_EQ(snap.phases[0].path, "run.PPLive");
  EXPECT_EQ(snap.phases[0].count, 1u);
  EXPECT_EQ(snap.phases[0].total_ns, 9'000'000'000u);
  EXPECT_EQ(snap.phases[0].self_ns, 8'000'000'000u);
  EXPECT_EQ(snap.phases[1].path, "run.PPLive.swarm_run");
}

TEST(BenchSnapshotParse, V1DocumentWithoutPhasesParses) {
  const BenchSnapshot snap = parse_bench_snapshot(
      "{\"schema\":\"peerscope.bench/1\",\"bench\":\"bench_degradation\","
      "\"wall_s\":3.25,\"events_executed\":100,\"events_per_s\":30.8,"
      "\"peak_rss_kb\":2048}\n");
  EXPECT_EQ(snap.bench, "bench_degradation");
  EXPECT_TRUE(snap.phases.empty());
}

TEST(BenchSnapshotParse, ForeignSchemaThrows) {
  EXPECT_THROW(
      parse_bench_snapshot("{\"schema\":\"peerscope.trace/1\"}"),
      std::runtime_error);
}

TEST(BenchSnapshotParse, MissingFieldThrows) {
  EXPECT_THROW(parse_bench_snapshot(
                   "{\"schema\":\"peerscope.bench/2\",\"bench\":\"x\"}"),
               std::runtime_error);
}

TEST(BenchSnapshotParse, UnreadableFileThrowsWithPath) {
  try {
    (void)read_bench_snapshot("/nonexistent/BENCH_x.json");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_THAT(error.what(), HasSubstr("BENCH_x.json"));
  }
}

TEST(BenchDiffMath, ComputesSignedPercentages) {
  const BenchDelta delta =
      diff_snapshots(sample(10.0, 1000.0), sample(11.0, 900.0));
  EXPECT_NEAR(delta.wall_pct, 10.0, 1e-9);
  EXPECT_NEAR(delta.events_pct, -10.0, 1e-9);
}

TEST(BenchDiffMath, BudgetGatesBothDirections) {
  // 10% slower wall: inside a 15% budget, outside a 5% one.
  const BenchDelta slower =
      diff_snapshots(sample(10.0, 1000.0), sample(11.0, 1000.0));
  EXPECT_FALSE(slower.regressed(15.0));
  EXPECT_TRUE(slower.regressed(5.0));
  // 20% events/sec drop fails a 15% budget even with flat wall time.
  const BenchDelta fewer =
      diff_snapshots(sample(10.0, 1000.0), sample(10.0, 800.0));
  EXPECT_TRUE(fewer.regressed(15.0));
  // Faster is never a regression.
  const BenchDelta faster =
      diff_snapshots(sample(10.0, 1000.0), sample(5.0, 2000.0));
  EXPECT_FALSE(faster.regressed(15.0));
}

TEST(BenchDiffMath, ZeroBaselineDisarmsThatHalf) {
  const BenchDelta delta =
      diff_snapshots(sample(0.0, 0.0), sample(10.0, 1000.0));
  EXPECT_DOUBLE_EQ(delta.wall_pct, 0.0);
  EXPECT_DOUBLE_EQ(delta.events_pct, 0.0);
  EXPECT_FALSE(delta.regressed(15.0));
}

TEST(BenchDiffRender, WithinBudgetVerdictAndPhaseRows) {
  BenchSnapshot base = parse_bench_snapshot(kV2Doc);
  BenchSnapshot fresh = base;
  fresh.wall_s = 12.6;
  const std::string text = render_bench_diff(base, fresh, 15.0);
  EXPECT_THAT(text, HasSubstr("bench_table2"));
  EXPECT_THAT(text, HasSubstr("verdict: within budget"));
  EXPECT_THAT(text, HasSubstr("run.PPLive"));
  EXPECT_THAT(text, Not(HasSubstr("REGRESSION")));
}

TEST(BenchDiffRender, RegressionVerdictNamesTheOverrideLabel) {
  const std::string text =
      render_bench_diff(sample(10.0, 1000.0), sample(20.0, 500.0), 15.0);
  EXPECT_THAT(text, HasSubstr("verdict: REGRESSION"));
  EXPECT_THAT(text, HasSubstr("perf-regression-ok"));
}

TEST(TrajectoryRender, OneMarkdownRowPerSnapshotWithHottestPhase) {
  const std::vector<BenchSnapshot> rows = {
      parse_bench_snapshot(kV2Doc),
      sample(3.0, 333.0),
  };
  const std::string text = render_trajectory_markdown(rows);
  EXPECT_THAT(text, HasSubstr("| bench |"));
  EXPECT_THAT(text,
              HasSubstr("| bench_table2 | 12.500 | 2500000 | 200.0k | "
                        "64.0 | run.PPLive (8.000s) |"));
  EXPECT_THAT(text, HasSubstr("| bench_table2 | 3.000 |"));
  EXPECT_THAT(text, HasSubstr("| - |\n"));
}

}  // namespace
}  // namespace peerscope::tools
