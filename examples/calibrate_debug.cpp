// Calibration inspector (development tool): joins the black-box
// observations against simulator ground truth to show where bytes come
// from — by true access class, by lag, by probe/background split.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "exp/runner.hpp"
#include "exp/testbed.hpp"
#include "net/topology.hpp"
#include "p2p/swarm.hpp"
#include "util/table.hpp"

using namespace peerscope;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "tvants";
  const std::int64_t duration_s = argc > 2 ? std::atoll(argv[2]) : 120;

  p2p::SystemProfile profile;
  if (app == "pplive") profile = p2p::SystemProfile::pplive();
  else if (app == "sopcast") profile = p2p::SystemProfile::sopcast();
  else profile = p2p::SystemProfile::tvants();

  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();

  p2p::SwarmConfig config;
  config.profile = profile;
  config.seed = 42;
  config.duration = util::SimTime::seconds(duration_s);
  p2p::Swarm swarm{topo, testbed.probes(), config};
  swarm.run();

  const auto& pop = swarm.population();

  struct Bucket {
    std::uint64_t peers = 0;
    std::uint64_t bytes = 0;
    std::uint64_t misclassified = 0;  // true class != IPG class
  };
  std::map<std::string, Bucket> rx_by_class;  // non-napa RX contributors
  std::uint64_t total_bytes = 0;

  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    for (const auto& [remote, f] : swarm.sink(i).flows().flows()) {
      if (f.rx_video_pkts < 13) continue;
      const auto id = pop.find(remote);
      if (!id) continue;
      const auto& info = pop.peer(*id);
      if (info.is_probe) continue;  // non-napa only
      const bool true_high = info.access.is_high_bandwidth();
      const bool ipg_high =
          f.has_min_ipg() && f.min_rx_video_ipg_ns < 1'000'000;
      std::string key = std::string(true_high ? "hi" : "lo") + "/" +
                        (info.is_source ? "src" : "bg");
      auto& b = rx_by_class[key];
      ++b.peers;
      b.bytes += f.rx_video_bytes;
      if (true_high != ipg_high) ++b.misclassified;
      total_bytes += f.rx_video_bytes;
    }
  }

  std::cout << app << " non-napa RX contributors by TRUE class:\n";
  for (const auto& [key, b] : rx_by_class) {
    std::cout << "  " << key << ": peers=" << b.peers
              << " bytes=" << b.bytes << " ("
              << (total_bytes ? 100.0 * static_cast<double>(b.bytes) /
                                    static_cast<double>(total_bytes)
                              : 0.0)
              << "%) misclassified=" << b.misclassified << '\n';
  }

  // Per-peer byte distribution of lo/bg contributors.
  std::cout << "\nlow-bw contributor byte histogram (chunks of 16250B):\n";
  std::map<std::uint64_t, int> chunks_hist;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    for (const auto& [remote, f] : swarm.sink(i).flows().flows()) {
      if (f.rx_video_pkts < 13) continue;
      const auto id = pop.find(remote);
      if (!id || pop.peer(*id).is_probe) continue;
      if (!pop.peer(*id).access.is_high_bandwidth()) {
        ++chunks_hist[f.rx_video_bytes / 16250];
      }
    }
  }
  for (const auto& [chunks, count] : chunks_hist) {
    std::cout << "  " << chunks << " chunks: " << count << " peers\n";
  }

  // Hop-count distribution over all observed peers and over RX
  // contributors (sanity check for the fixed 19-hop threshold).
  std::map<int, int> hop_all, hop_contrib;
  std::uint64_t below_all = 0, n_all = 0, below_c = 0, n_c = 0;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    for (const auto& [remote, f] : swarm.sink(i).flows().flows()) {
      if (!f.saw_rx) continue;
      const int hops = 128 - static_cast<int>(f.rx_ttl);
      ++hop_all[hops];
      ++n_all;
      if (hops < 19) ++below_all;
      if (f.rx_video_pkts >= 13 && !pop.is_probe_addr(remote)) {
        ++hop_contrib[hops];
        ++n_c;
        if (hops < 19) ++below_c;
      }
    }
  }
  std::cout << "\nhops<19: all peers "
            << 100.0 * static_cast<double>(below_all) /
                   static_cast<double>(n_all)
            << "%  non-napa RX contributors "
            << 100.0 * static_cast<double>(below_c) /
                   static_cast<double>(n_c)
            << "%\nhop histogram (all): ";
  for (const auto& [h, c] : hop_all) std::cout << h << ':' << c << ' ';
  std::cout << '\n';
  return 0;
}
