// Side-by-side comparison of the three P2P-TV systems: runs all
// experiments concurrently on a thread pool and prints a compact
// dashboard of the paper's headline statistics — the "which system is
// network-friendlier" question the paper answers.
//
//   ./compare_systems [duration_s] [seed]

#include <cstdlib>
#include <iostream>

#include "aware/bandwidth.hpp"
#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace peerscope;

int main(int argc, char** argv) {
  const std::int64_t duration_s = argc > 1 ? std::atoll(argv[1]) : 150;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const net::AsTopology topo = net::make_reference_topology();

  std::vector<exp::RunSpec> specs;
  for (auto profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants()}) {
    exp::RunSpec spec;
    spec.profile = std::move(profile);
    spec.seed = seed;
    spec.duration = util::SimTime::seconds(duration_s);
    specs.push_back(std::move(spec));
  }

  std::cout << "Running " << specs.size() << " experiments ("
            << duration_s << " s each) concurrently...\n\n";
  util::ThreadPool pool;
  const auto results = exp::run_experiments(topo, specs, pool);

  util::TextTable table{{"statistic", "PPLive", "SopCast", "TVAnts"}};
  auto row = [&table](const std::string& label, auto getter,
                      const std::vector<exp::RunResult>& rs) {
    std::vector<std::string> cells{label};
    for (const auto& r : rs) cells.push_back(getter(r));
    table.add_row(std::move(cells));
  };
  const auto num = [](double v, int p = 1) {
    return util::TextTable::num(v, p);
  };

  row("stream RX [kbps]",
      [&](const exp::RunResult& r) {
        return num(aware::summarize(r.observations).rx_kbps_mean, 0);
      },
      results);
  row("stream TX [kbps]",
      [&](const exp::RunResult& r) {
        return num(aware::summarize(r.observations).tx_kbps_mean, 0);
      },
      results);
  row("peers contacted / probe",
      [&](const exp::RunResult& r) {
        return num(aware::summarize(r.observations).all_peers_mean, 0);
      },
      results);
  row("RX contributors / probe",
      [&](const exp::RunResult& r) {
        return num(aware::summarize(r.observations).contrib_rx_mean, 0);
      },
      results);
  table.add_rule();
  row("BW byte-preference B'D%",
      [&](const exp::RunResult& r) {
        const auto rows = aware::awareness_table(r.observations);
        return num(rows[0].download.b_prime_pct.value_or(0));
      },
      results);
  row("AS byte-preference B'D%",
      [&](const exp::RunResult& r) {
        const auto rows = aware::awareness_table(r.observations);
        return num(rows[1].download.b_prime_pct.value_or(0));
      },
      results);
  row("AS peer-preference P'D%",
      [&](const exp::RunResult& r) {
        const auto rows = aware::awareness_table(r.observations);
        return num(rows[1].download.p_prime_pct.value_or(0));
      },
      results);
  row("HOP byte-preference B'D%",
      [&](const exp::RunResult& r) {
        const auto rows = aware::awareness_table(r.observations);
        return num(rows[4].download.b_prime_pct.value_or(0));
      },
      results);
  table.add_rule();
  row("probe-cloud byte share %",
      [&](const exp::RunResult& r) {
        return num(aware::self_bias(r.observations).contributors_bytes_pct);
      },
      results);
  row("intra-AS probe ratio R",
      [&](const exp::RunResult& r) {
        return num(aware::as_traffic_matrix(r.observations).intra_inter_ratio,
                   2);
      },
      results);
  row("median supplier capacity [Mbps]",
      [&](const exp::RunResult& r) {
        return num(aware::capacity_distribution(r.observations).quantile(0.5),
                   1);
      },
      results);

  std::cout << table.render();
  std::cout << "\nReading: every system chases bandwidth; TVAnts (and to a\n"
               "lesser degree PPLive) also localises traffic within the AS;\n"
               "SopCast is location-blind; nobody optimises hop distance.\n";
  return 0;
}
