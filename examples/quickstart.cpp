// Quickstart: run one scaled-down P2P-TV experiment and print the
// summary plus the network-awareness table — the whole pipeline
// (simulate -> capture -> contributor heuristic -> preference
// framework) in ~40 lines of user code.
//
//   ./quickstart [app] [seed] [duration_s]
//     app: tvants (default) | sopcast | pplive | pplive-popular

#include <cstdlib>
#include <iostream>
#include <string>

#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace peerscope;

namespace {

p2p::SystemProfile profile_by_name(const std::string& name) {
  if (name == "pplive") return p2p::SystemProfile::pplive();
  if (name == "sopcast") return p2p::SystemProfile::sopcast();
  if (name == "pplive-popular") return p2p::SystemProfile::pplive_popular();
  if (name == "tvants") return p2p::SystemProfile::tvants();
  std::cerr << "unknown app '" << name
            << "' (expected tvants|sopcast|pplive|pplive-popular)\n";
  std::exit(2);
}

std::string opt(const std::optional<double>& v) {
  return v ? util::TextTable::num(*v, 1) : "-";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "tvants";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const std::int64_t duration_s = argc > 3 ? std::atoll(argv[3]) : 120;

  const net::AsTopology topo = net::make_reference_topology();

  exp::RunSpec spec;
  spec.profile = profile_by_name(app);
  spec.seed = seed;
  spec.duration = util::SimTime::seconds(duration_s);

  std::cout << "Running " << spec.profile.name << " experiment: "
            << spec.profile.population.background_peers
            << " background peers, " << duration_s << " s, seed " << seed
            << "...\n";
  const exp::RunResult result = exp::run_experiment(topo, spec);

  const aware::ExperimentSummary s = aware::summarize(result.observations);
  util::TextTable summary{{"metric", "mean", "max"}};
  summary.add_row({"stream RX [kbps]", util::TextTable::num(s.rx_kbps_mean),
                   util::TextTable::num(s.rx_kbps_max)});
  summary.add_row({"stream TX [kbps]", util::TextTable::num(s.tx_kbps_mean),
                   util::TextTable::num(s.tx_kbps_max)});
  summary.add_row({"all peers", util::TextTable::num(s.all_peers_mean),
                   util::TextTable::count(s.all_peers_max)});
  summary.add_row({"contributors RX",
                   util::TextTable::num(s.contrib_rx_mean),
                   util::TextTable::count(s.contrib_rx_max)});
  summary.add_row({"contributors TX",
                   util::TextTable::num(s.contrib_tx_mean),
                   util::TextTable::count(s.contrib_tx_max)});
  summary.add_row(
      {"observed peers total", util::TextTable::count(s.observed_total), ""});
  std::cout << '\n' << summary.render();

  const aware::SelfBias bias = aware::self_bias(result.observations);
  std::cout << "\nself-induced bias (contributors): peers "
            << util::TextTable::num(bias.contributors_peer_pct)
            << "%  bytes "
            << util::TextTable::num(bias.contributors_bytes_pct) << "%\n";

  const auto table4 = aware::awareness_table(result.observations);
  util::TextTable awareness{
      {"net", "B'D%", "P'D%", "BD%", "PD%", "B'U%", "P'U%", "BU%", "PU%"}};
  for (const auto& row : table4) {
    awareness.add_row({aware::to_string(row.metric),
                       opt(row.download.b_prime_pct),
                       opt(row.download.p_prime_pct), opt(row.download.b_pct),
                       opt(row.download.p_pct), opt(row.upload.b_prime_pct),
                       opt(row.upload.p_prime_pct), opt(row.upload.b_pct),
                       opt(row.upload.p_pct)});
  }
  std::cout << "\nnetwork awareness (Table IV layout):\n"
            << awareness.render();

  std::cout << "\nsim counters: delivered=" << result.counters.chunks_delivered
            << " dup=" << result.counters.chunks_duplicate
            << " uploaded=" << result.counters.chunks_uploaded
            << " refused=" << result.counters.requests_refused
            << " contacts=" << result.counters.contacts
            << " timeouts=" << result.counters.timeouts << '\n';
  return 0;
}
