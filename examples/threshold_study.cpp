// Sensitivity of the BW classification to the 1 ms threshold (§III-B):
// sweeps the inter-packet-gap boundary across three decades and prints
// the resulting Table IV BW cell plus the supplier-capacity histogram,
// showing the paper's 10 Mb/s choice sits on a plateau between the DSL
// and ethernet capacity clusters.
//
//   ./threshold_study [app] [duration_s]

#include <cstdlib>
#include <iostream>

#include "aware/bandwidth.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

using namespace peerscope;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "sopcast";
  const std::int64_t duration_s = argc > 2 ? std::atoll(argv[2]) : 150;

  p2p::SystemProfile profile;
  if (app == "pplive") profile = p2p::SystemProfile::pplive();
  else if (app == "tvants") profile = p2p::SystemProfile::tvants();
  else profile = p2p::SystemProfile::sopcast();

  const net::AsTopology topo = net::make_reference_topology();
  exp::RunSpec spec;
  spec.profile = profile;
  spec.seed = 42;
  spec.duration = util::SimTime::seconds(duration_s);
  std::cout << "Running " << profile.name << " (" << duration_s
            << " s)...\n\n";
  const auto result = exp::run_experiment(topo, spec);

  // Threshold sweep: 0.1 ms .. 100 ms, i.e. 100 Mb/s .. 0.1 Mb/s.
  const std::int64_t thresholds[] = {
      100'000,    200'000,    500'000,    1'000'000,  2'000'000,
      5'000'000,  10'000'000, 20'000'000, 50'000'000, 100'000'000};
  const auto sweep =
      aware::bw_threshold_sweep(result.observations, thresholds);

  util::TextTable table{
      {"IPG threshold", "= capacity", "P'D% (peers high)", "B'D% (bytes)"}};
  for (const auto& point : sweep) {
    const double mbps =
        1250.0 * 8.0 / static_cast<double>(point.threshold_ns) * 1e3;
    std::string label = util::TextTable::num(
        static_cast<double>(point.threshold_ns) / 1e6, 1);
    table.add_row({label + " ms",
                   util::TextTable::num(mbps, 1) + " Mbps",
                   util::TextTable::num(point.peer_pct),
                   util::TextTable::num(point.byte_pct)});
  }
  std::cout << table.render();

  std::cout << "\nsupplier capacity distribution (non-probe RX "
               "contributors):\n";
  const auto histogram =
      aware::capacity_distribution(result.observations, 120.0, 12);
  std::cout << histogram.render(40);

  std::cout << "\nReading: between the DSL cluster (< 1 Mb/s) and the\n"
               "ethernet/fiber cluster (>= 20 Mb/s) the preference curve\n"
               "is flat — any threshold from ~2 to ~20 Mb/s, including\n"
               "the paper's 10 Mb/s (1 ms), classifies identically.\n";
  return 0;
}
