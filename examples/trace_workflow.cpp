// The full downstream-user trace workflow:
//   1. run a (small) experiment capturing raw packet records;
//   2. export every probe's capture as .psct (native), .csv and .pcap
//      (wireshark/tcpdump-compatible);
//   3. reload the native traces from disk;
//   4. re-run the complete black-box analysis offline and verify it
//      matches the online pipeline bit-for-bit.
//
//   ./trace_workflow [output_dir] [duration_s]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "aware/observation.hpp"
#include "aware/report.hpp"
#include "aware/temporal.hpp"
#include "exp/runner.hpp"
#include "exp/testbed.hpp"
#include "net/topology.hpp"
#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "util/table.hpp"

using namespace peerscope;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "peerscope_traces";
  const std::int64_t duration_s = argc > 2 ? std::atoll(argv[2]) : 60;
  std::filesystem::create_directories(dir);

  // 1. Capture.
  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();
  p2p::SwarmConfig config;
  config.profile = p2p::SystemProfile::tvants();
  config.seed = 42;
  config.duration = util::SimTime::seconds(duration_s);
  config.keep_records = true;
  p2p::Swarm swarm{topo, testbed.probes(), config};
  std::cout << "Simulating " << config.profile.name << " for " << duration_s
            << " s with packet capture at all " << testbed.host_count()
            << " probes...\n";
  swarm.run();

  // 2. Export.
  std::uint64_t total_records = 0;
  const auto& population = swarm.population();
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const auto label = population.probe_specs()[i].label();
    auto records = swarm.sink(i).records();
    std::sort(records.begin(), records.end(), trace::record_before);
    trace::write_trace(dir / (label + ".psct"), swarm.sink(i).probe(),
                       records);
    trace::write_trace_csv(dir / (label + ".csv"), swarm.sink(i).probe(),
                           records);
    trace::write_pcap(dir / (label + ".pcap"), swarm.sink(i).probe(),
                      records);
    total_records += records.size();
  }
  std::cout << "Wrote " << swarm.probe_count() << " x {psct,csv,pcap} ("
            << util::TextTable::count(total_records) << " packets) to "
            << dir << "\n";

  // 3+4. Reload and re-analyse offline.
  aware::ExperimentObservations offline;
  offline.app = config.profile.name;
  offline.duration = config.duration;
  for (std::size_t i = 0; i < swarm.probe_count(); ++i) {
    const auto label = population.probe_specs()[i].label();
    const trace::TraceFile file =
        trace::read_trace(dir / (label + ".psct"));
    const auto& info = population.peer(population.probe_ids()[i]);
    offline.probes.push_back({file.probe, info.ep.as, info.ep.country,
                              info.access.is_high_bandwidth(), label});
    offline.per_probe.push_back(aware::extract_observations(
        trace::FlowTable::from_records(file.probe, file.records),
        population.registry(), population.probe_addrs()));
  }

  const auto online = exp::extract_observations(swarm);
  const auto online_rows = aware::awareness_table(online);
  const auto offline_rows = aware::awareness_table(offline);
  bool identical = true;
  for (std::size_t m = 0; m < online_rows.size(); ++m) {
    if (online_rows[m].download.b_pct != offline_rows[m].download.b_pct ||
        online_rows[m].download.p_pct != offline_rows[m].download.p_pct) {
      identical = false;
    }
  }
  std::cout << "offline (trace-file) analysis matches online pipeline: "
            << (identical ? "yes" : "NO") << "\n\n";

  // Bonus: the temporal view of one institution probe's capture.
  const auto& records = swarm.sink(0).records();
  const auto series =
      aware::time_series(records, config.duration, util::SimTime::seconds(10));
  util::TextTable table{
      {"t [s]", "RX kbps", "TX kbps", "active peers", "new contributors"}};
  for (const auto& point : series) {
    table.add_row({util::TextTable::num(point.start.seconds(), 0),
                   util::TextTable::num(point.rx_kbps, 0),
                   util::TextTable::num(point.tx_kbps, 0),
                   std::to_string(point.active_peers),
                   std::to_string(point.new_rx_contributors)});
  }
  std::cout << "temporal evolution at probe "
            << population.probe_specs()[0].label() << ":\n"
            << table.render();

  const auto stability = aware::session_stability(records);
  std::cout << "\npeer session stability: mean "
            << util::TextTable::num(stability.mean_session_s, 1)
            << " s, median "
            << util::TextTable::num(stability.median_session_s, 1)
            << " s, p90 "
            << util::TextTable::num(stability.p90_session_s, 1) << " s over "
            << stability.peers << " peers\n";
  return 0;
}
