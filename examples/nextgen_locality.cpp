// The paper's conclusion, made runnable: "future P2P-TV applications
// could improve the level of network-awareness, by better localizing
// the traffic the network has to carry, seeking shorter paths,
// exploiting topology knowledge".
//
// This study compares a location-blind 2008 baseline (SopCast profile)
// against the NAPA-WINE prototype policy (explicit AS bias + RTT
// awareness + topology-aware discovery) on the same swarm, and reports
// both *network friendliness* (traffic localisation, path length) and
// *user QoS* (delivery ratio, duplicates) — showing the localisation
// win costs essentially nothing.
//
//   ./nextgen_locality [duration_s] [seed]

#include <cstdlib>
#include <iostream>

#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace peerscope;

namespace {

struct Friendliness {
  double intra_as_bytes_pct = 0;   // download bytes from same-AS peers
  double intra_cc_bytes_pct = 0;
  double byte_weighted_hops = 0;   // mean path length per delivered byte
  double intercontinental_pct = 0; // bytes from CN/ROW sources
  double delivery_ratio = 0;       // chunks delivered / chunks expected
  double duplicate_pct = 0;
};

Friendliness measure(const exp::RunResult& result,
                     const p2p::SystemProfile& profile,
                     util::SimTime duration) {
  Friendliness f;
  std::uint64_t bytes = 0, same_as = 0, same_cc = 0, intercont = 0;
  double hop_bytes = 0;
  for (const auto& per_probe : result.observations.per_probe) {
    for (const auto& obs : per_probe) {
      if (obs.rx_video_bytes == 0) continue;
      bytes += obs.rx_video_bytes;
      if (obs.remote_as == obs.probe_as) same_as += obs.rx_video_bytes;
      if (obs.remote_cc == obs.probe_cc) same_cc += obs.rx_video_bytes;
      if (obs.remote_cc == net::kChina ||
          obs.remote_cc == net::CountryCode{'U', 'S'} ||
          obs.remote_cc == net::CountryCode{'K', 'R'} ||
          obs.remote_cc == net::CountryCode{'J', 'P'} ||
          obs.remote_cc == net::CountryCode{'T', 'W'} ||
          obs.remote_cc == net::CountryCode{'C', 'A'}) {
        intercont += obs.rx_video_bytes;
      }
      if (obs.rx_hops >= 0) {
        hop_bytes += static_cast<double>(obs.rx_video_bytes) *
                     static_cast<double>(obs.rx_hops);
      }
    }
  }
  if (bytes > 0) {
    f.intra_as_bytes_pct =
        100.0 * static_cast<double>(same_as) / static_cast<double>(bytes);
    f.intra_cc_bytes_pct =
        100.0 * static_cast<double>(same_cc) / static_cast<double>(bytes);
    f.intercontinental_pct =
        100.0 * static_cast<double>(intercont) / static_cast<double>(bytes);
    f.byte_weighted_hops = hop_bytes / static_cast<double>(bytes);
  }

  // QoS: chunks each probe should have fetched over the run.
  const double chunks_per_probe =
      duration.seconds() / profile.stream.chunk_interval().seconds();
  const double expected =
      chunks_per_probe * static_cast<double>(result.observations.probes.size());
  f.delivery_ratio =
      static_cast<double>(result.counters.chunks_delivered) / expected;
  const auto total = result.counters.chunks_delivered +
                     result.counters.chunks_duplicate;
  f.duplicate_pct = total ? 100.0 *
                                static_cast<double>(
                                    result.counters.chunks_duplicate) /
                                static_cast<double>(total)
                          : 0.0;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t duration_s = argc > 1 ? std::atoll(argv[1]) : 150;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const net::AsTopology topo = net::make_reference_topology();
  const auto duration = util::SimTime::seconds(duration_s);

  const p2p::SystemProfile baseline = p2p::SystemProfile::sopcast();
  const p2p::SystemProfile nextgen = p2p::SystemProfile::napawine_prototype();

  std::vector<exp::RunSpec> specs(2);
  specs[0].profile = baseline;
  specs[1].profile = nextgen;
  for (auto& spec : specs) {
    spec.seed = seed;
    spec.duration = duration;
  }

  std::cout << "Comparing '" << baseline.name << "' (location-blind 2008 "
            << "baseline) vs '" << nextgen.name
            << "' (the paper's recommendation) on the same swarm...\n\n";
  util::ThreadPool pool;
  const auto results = exp::run_experiments(topo, specs, pool);
  const Friendliness base = measure(results[0], baseline, duration);
  const Friendliness next = measure(results[1], nextgen, duration);

  util::TextTable table{
      {"metric", baseline.name, nextgen.name, "change"}};
  const auto num = [](double v, int p = 1) {
    return util::TextTable::num(v, p);
  };
  auto row = [&](const std::string& label, double a, double b, int p = 1) {
    table.add_row({label, num(a, p), num(b, p),
                   (b >= a ? "+" : "") + num(b - a, p)});
  };
  row("intra-AS download bytes %", base.intra_as_bytes_pct,
      next.intra_as_bytes_pct);
  row("same-country download bytes %", base.intra_cc_bytes_pct,
      next.intra_cc_bytes_pct);
  row("intercontinental download bytes %", base.intercontinental_pct,
      next.intercontinental_pct);
  row("byte-weighted mean hops", base.byte_weighted_hops,
      next.byte_weighted_hops);
  table.add_rule();
  row("chunk delivery ratio", base.delivery_ratio, next.delivery_ratio, 3);
  row("duplicate chunks %", base.duplicate_pct, next.duplicate_pct, 2);
  std::cout << table.render();

  std::cout << "\nconclusion checks:\n"
            << "  localisation improves (more intra-AS bytes): "
            << (next.intra_as_bytes_pct > 2 * base.intra_as_bytes_pct
                    ? "yes"
                    : "NO")
            << '\n'
            << "  paths shorten (fewer byte-weighted hops): "
            << (next.byte_weighted_hops < base.byte_weighted_hops ? "yes"
                                                                  : "NO")
            << '\n'
            << "  QoS preserved (delivery within 2%): "
            << (next.delivery_ratio > base.delivery_ratio - 0.02 ? "yes"
                                                                 : "NO")
            << '\n';
  return 0;
}
