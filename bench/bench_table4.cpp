// Table IV: network awareness as peer-wise and byte-wise bias — the
// paper's headline result. For every network property (BW, AS, CC,
// NET, HOP), both directions, with and without the probe set, paper vs
// measured.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

void add_rows(util::TextTable& table, const PaperAwareness& paper,
              const aware::AwarenessRow& measured) {
  table.add_row({paper.metric, paper.app, "paper", paper_cell(paper.bpd),
                 paper_cell(paper.ppd), paper_cell(paper.bd),
                 paper_cell(paper.pd), paper_cell(paper.bpu),
                 paper_cell(paper.ppu), paper_cell(paper.bu),
                 paper_cell(paper.pu)});
  table.add_row({"", "", "ours", fmt_opt(measured.download.b_prime_pct),
                 fmt_opt(measured.download.p_prime_pct),
                 fmt_opt(measured.download.b_pct),
                 fmt_opt(measured.download.p_pct),
                 fmt_opt(measured.upload.b_prime_pct),
                 fmt_opt(measured.upload.p_prime_pct),
                 fmt_opt(measured.upload.b_pct),
                 fmt_opt(measured.upload.p_pct)});
}

}  // namespace

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Table IV: network awareness, peer-wise (P) and "
               "byte-wise (B) bias ===\n\n";

  const auto results = run_three_apps(topo, cfg);
  std::vector<std::vector<aware::AwarenessRow>> tables;
  tables.reserve(results.size());
  for (const auto& result : results) {
    tables.push_back(aware::awareness_table(result.observations));
    if (cfg.outdir) {
      aware::write_awareness_csv(
          *cfg.outdir / ("table4_" + result.observations.app + ".csv"),
          result.observations.app, tables.back());
    }
  }

  util::TextTable table{{"Net", "App", "src", "B'D%", "P'D%", "BD%", "PD%",
                         "B'U%", "P'U%", "BU%", "PU%"}};
  // kPaperTable4 is ordered metric-major (BW rows, then AS, ...), apps
  // in [PPLive, SopCast, TVAnts] order matching `results`.
  for (std::size_t entry = 0; entry < std::size(kPaperTable4); ++entry) {
    const std::size_t metric_index = entry / 3;
    const std::size_t app_index = entry % 3;
    add_rows(table, kPaperTable4[entry],
             tables[app_index][metric_index]);
    if (app_index == 2) table.add_rule();
  }
  std::cout << table.render();

  // The conclusions the paper draws from this table, as checks.
  std::cout << "\nshape checks (must hold):\n";
  const auto& pplive = tables[0];
  const auto& sopcast = tables[1];
  const auto& tvants = tables[2];

  bool bw_all = true;
  for (const auto* t : {&pplive, &sopcast, &tvants}) {
    const auto& bw = (*t)[0].download;
    if (!(bw.b_prime_pct && *bw.b_prime_pct > 90 && bw.p_prime_pct &&
          *bw.p_prime_pct > 65)) {
      bw_all = false;
    }
  }
  std::cout << "  strong BW preference in all systems (B' > 90, P' > 65): "
            << (bw_all ? "yes" : "NO") << '\n';

  const auto ratio = [](const aware::AwarenessCell& cell) {
    return cell.b_prime_pct && cell.p_prime_pct && *cell.p_prime_pct > 0
               ? *cell.b_prime_pct / *cell.p_prime_pct
               : 0.0;
  };
  std::cout << "  PPLive AS byte-over-peer amplification (B'/P' >> 1): "
            << fmt(ratio(pplive[1].download), 2) << " (paper ~10)\n";
  std::cout << "  TVAnts AS byte-over-peer amplification: "
            << fmt(ratio(tvants[1].download), 2) << " (paper ~2.2)\n";
  std::cout << "  SopCast AS-blind (B' ~= P'): "
            << fmt(ratio(sopcast[1].download), 2) << " (paper ~0.9)\n";
  std::cout << "  TVAnts same-AS discovery above SopCast's (P'D): "
            << fmt_opt(tvants[1].download.p_prime_pct) << " vs "
            << fmt_opt(sopcast[1].download.p_prime_pct) << '\n';

  const auto hop_flat = [&](const std::vector<aware::AwarenessRow>& t) {
    const auto& hop = t[4].download;
    return hop.b_prime_pct && hop.p_prime_pct &&
           std::abs(*hop.b_prime_pct - *hop.p_prime_pct) < 12.0;
  };
  std::cout << "  no HOP awareness for PPLive/SopCast (B' ~= P'): "
            << (hop_flat(pplive) && hop_flat(sopcast) ? "yes" : "NO") << '\n';
  return 0;
}
