// Shared bench-harness plumbing: runs the three applications at the
// default reproduction scale and provides the paper's published values
// so every binary prints paper-vs-measured rows.
#pragma once

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "aware/export.hpp"
#include "aware/report.hpp"
#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_summary.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace peerscope::bench {

namespace detail {

/// Strict positive-integer parse for environment knobs: the whole
/// token must be a base-10 number in [1, max]. atoll-style silent
/// acceptance of garbage ("30x" -> 30, "banana" -> 0, "-5" wrapping
/// through strtoull) turned typos into surprising runs.
inline std::uint64_t env_u64_or_die(const char* var, const char* text,
                                    std::uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  const bool negative = [text] {
    for (const char* p = text; *p != '\0'; ++p) {
      if (*p == '-') return true;
      if (*p != ' ' && *p != '\t') return false;
    }
    return false;
  }();
  if (end == text || *end != '\0' || negative || errno == ERANGE ||
      v == 0 || v > max) {
    std::cerr << "invalid " << var << "=\"" << text << "\"\n"
              << "usage: " << var
              << " must be a positive base-10 integer <= " << max << '\n';
    std::exit(2);
  }
  return v;
}

}  // namespace detail

/// Default reproduction scale (DESIGN.md §6): 300 simulated seconds,
/// profile-default populations. Override via environment for quick
/// runs: PEERSCOPE_BENCH_SECONDS, PEERSCOPE_BENCH_SEED; set
/// PEERSCOPE_BENCH_OUTDIR to archive machine-readable CSVs of every
/// regenerated table/figure; set PEERSCOPE_BENCH_FULL_SCALE (any
/// value) to run each application at the paper's full observed-peer
/// count (Table II: 181,729 / 4,057 / 550) with no count scaling.
/// Malformed values abort with a usage message (exit 2) instead of
/// running at a silently-mangled scale.
struct BenchConfig {
  std::int64_t seconds = 300;
  std::uint64_t seed = 42;
  bool full_scale = false;
  std::optional<std::filesystem::path> outdir;

  static BenchConfig from_env() {
    BenchConfig cfg;
    if (const char* s = std::getenv("PEERSCOPE_BENCH_SECONDS")) {
      // A year of simulated time is already far past any useful run.
      cfg.seconds = static_cast<std::int64_t>(detail::env_u64_or_die(
          "PEERSCOPE_BENCH_SECONDS", s, 31'536'000ULL));
    }
    cfg.full_scale = std::getenv("PEERSCOPE_BENCH_FULL_SCALE") != nullptr;
    if (const char* s = std::getenv("PEERSCOPE_BENCH_SEED")) {
      cfg.seed = detail::env_u64_or_die(
          "PEERSCOPE_BENCH_SEED", s,
          std::numeric_limits<std::uint64_t>::max());
    }
    if (const char* s = std::getenv("PEERSCOPE_BENCH_OUTDIR")) {
      cfg.outdir = s;
      std::filesystem::create_directories(*cfg.outdir);
    }
    return cfg;
  }
};

/// PEERSCOPE_BENCH_METRICS hook: construct one of these at the top of
/// a bench main. When the variable names a path, a metrics registry is
/// installed for the process lifetime and the full metrics.json is
/// written there at scope exit; when unset this is inert and the bench
/// output is byte-identical to an uninstrumented build.
class MetricsSession {
 public:
  MetricsSession() {
    if (const char* path = std::getenv("PEERSCOPE_BENCH_METRICS")) {
      path_ = path;
      registry_ = std::make_unique<obs::MetricsRegistry>();
      obs::install(registry_.get());
    }
  }
  ~MetricsSession() {
    if (!registry_) return;
    obs::install(nullptr);
    try {
      obs::write_metrics_json(path_, registry_->snapshot());
      std::cerr << "metrics: wrote " << path_.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "metrics: " << error.what() << '\n';
    }
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

 private:
  std::filesystem::path path_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
};

/// PEERSCOPE_BENCH_TRACE hook: the tracing sibling of MetricsSession.
/// When the variable names a path, an event recorder is installed for
/// the process lifetime and the Chrome-compatible trace.json (schema
/// peerscope.trace/1) is written there at scope exit; when unset this
/// is inert and the bench output is byte-identical to an
/// uninstrumented build. Construct it next to MetricsSession so drop
/// accounting lands in the metrics sidecar too.
class TraceSession {
 public:
  TraceSession() {
    if (const char* path = std::getenv("PEERSCOPE_BENCH_TRACE")) {
      path_ = path;
      recorder_ = std::make_unique<obs::TraceRecorder>();
      obs::install_tracer(recorder_.get());
    }
  }
  ~TraceSession() {
    if (!recorder_) return;
    obs::install_tracer(nullptr);
    try {
      obs::write_trace_json(path_, recorder_->snapshot());
      std::cerr << "trace: wrote " << path_.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "trace: " << error.what() << '\n';
    }
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::filesystem::path path_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

/// PEERSCOPE_BENCH_SERIES hook: the time-series sibling of
/// MetricsSession. When the variable names a path, a timeseries
/// recorder is installed for the process lifetime — every run arms
/// its sim-time sampling grid (PEERSCOPE_BENCH_SERIES_SECONDS
/// intervals, default 10) — and the PSTS sidecar is written there at
/// scope exit; read it with `peerscope timeline`. When unset this is
/// inert and the bench output is byte-identical to an uninstrumented
/// build.
class SeriesSession {
 public:
  SeriesSession() {
    if (const char* path = std::getenv("PEERSCOPE_BENCH_SERIES")) {
      path_ = path;
      std::int64_t interval_s = 10;
      if (const char* s = std::getenv("PEERSCOPE_BENCH_SERIES_SECONDS")) {
        interval_s = static_cast<std::int64_t>(detail::env_u64_or_die(
            "PEERSCOPE_BENCH_SERIES_SECONDS", s, 31'536'000ULL));
      }
      recorder_ = std::make_unique<obs::TimeseriesRecorder>(
          util::SimTime::seconds(interval_s));
      obs::install_series(recorder_.get());
    }
  }
  ~SeriesSession() {
    if (!recorder_) return;
    obs::install_series(nullptr);
    try {
      obs::write_series(path_, recorder_->snapshot());
      std::cerr << "series: wrote " << path_.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "series: " << error.what() << '\n';
    }
  }

  SeriesSession(const SeriesSession&) = delete;
  SeriesSession& operator=(const SeriesSession&) = delete;

 private:
  std::filesystem::path path_;
  std::unique_ptr<obs::TimeseriesRecorder> recorder_;
};

/// PEERSCOPE_BENCH_JSON hook: machine-readable performance summary for
/// CI trend tracking. When the variable names a path, the session
/// measures the bench's wall time, simulation throughput, peak RSS and
/// per-phase span attribution, and writes them at scope exit as a
/// one-object JSON document (schema peerscope.bench/2) via the
/// atomic-write path, so a killed bench never leaves a torn artifact.
/// When unset this is inert.
///
/// The `phases` array carries one row per traced span path —
/// count, total wall ns and self wall ns (total minus directly nested
/// children), sorted by path — computed with the same
/// obs::attribute_spans pass `peerscope trace-summary` uses. That is
/// what lets the CI trajectory gate localize a wall-time regression to
/// a phase instead of just flagging the end-to-end number.
///
/// Construct it FIRST in main (before MetricsSession/TraceSession):
/// when no metrics registry is requested the session installs a
/// private one to count sim.events_executed, and when no tracer is
/// requested it installs a private recorder to capture span events;
/// when PEERSCOPE_BENCH_METRICS / PEERSCOPE_BENCH_TRACE already
/// claimed the global slots the session leaves them alone and reports
/// throughput as 0 / phases as empty (the full data is in those
/// sidecars instead).
class BenchJsonSession {
 public:
  explicit BenchJsonSession(std::string name) : name_(std::move(name)) {
    if (const char* path = std::getenv("PEERSCOPE_BENCH_JSON")) {
      path_ = path;
      started_ = std::chrono::steady_clock::now();
      if (!obs::enabled() && !std::getenv("PEERSCOPE_BENCH_METRICS")) {
        registry_ = std::make_unique<obs::MetricsRegistry>();
        obs::install(registry_.get());
      }
      if (!obs::trace_enabled() && !std::getenv("PEERSCOPE_BENCH_TRACE")) {
        recorder_ = std::make_unique<obs::TraceRecorder>();
        obs::install_tracer(recorder_.get());
      }
    }
  }
  ~BenchJsonSession() {
    if (path_.empty()) return;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    std::uint64_t events = 0;
    if (registry_) {
      obs::install(nullptr);
      const auto snapshot = registry_->snapshot();
      const auto it = snapshot.counters.find("sim.events_executed");
      if (it != snapshot.counters.end()) events = it->second;
    }
    std::vector<obs::SpanAttribution> phases;
    if (recorder_) {
      obs::install_tracer(nullptr);
      phases = obs::attribute_spans(recorder_->snapshot().events);
      std::sort(phases.begin(), phases.end(),
                [](const obs::SpanAttribution& a,
                   const obs::SpanAttribution& b) { return a.path < b.path; });
    }
    ::rusage usage{};
    ::getrusage(RUSAGE_SELF, &usage);
    std::ostringstream out;
    out << "{\"schema\":\"peerscope.bench/2\",\"bench\":\"" << name_
        << "\",\"wall_s\":" << wall_s << ",\"events_executed\":" << events
        << ",\"events_per_s\":" << (wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0)
        << ",\"peak_rss_kb\":" << usage.ru_maxrss << ",\"phases\":[";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const obs::SpanAttribution& row = phases[i];
      if (i != 0) out << ',';
      out << "{\"path\":\"" << row.path << "\",\"count\":" << row.count
          << ",\"total_ns\":" << row.total_ns
          << ",\"self_ns\":" << row.self_ns << '}';
    }
    out << "]}\n";
    try {
      util::write_file_atomic(path_, out.str());
      std::cerr << "bench-json: wrote " << path_.string() << '\n';
    } catch (const std::exception& error) {
      std::cerr << "bench-json: " << error.what() << '\n';
    }
  }

  BenchJsonSession(const BenchJsonSession&) = delete;
  BenchJsonSession& operator=(const BenchJsonSession&) = delete;

 private:
  std::string name_;
  std::filesystem::path path_;
  std::chrono::steady_clock::time_point started_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

inline std::string fmt(double v, int precision = 1) {
  return util::TextTable::num(v, precision);
}

inline std::string fmt_opt(const std::optional<double>& v,
                           int precision = 1) {
  return v ? fmt(*v, precision) : "-";
}

// ----------------------------------------------------------------------
// Published values (the paper's tables), for side-by-side comparison.

/// Table II row.
struct PaperSummary {
  const char* app;
  double rx_mean, rx_max, tx_mean, tx_max;
  double peers_mean, peers_max;
  double contrib_rx_mean, contrib_rx_max;
  double contrib_tx_mean, contrib_tx_max;
  double observed_total;
};

inline constexpr PaperSummary kPaperTable2[] = {
    {"PPLive", 552, 934, 3384, 11818, 23101, 39797, 391, 841, 1025, 2570,
     181729},
    {"SopCast", 449, 542, 293, 1070, 776, 1233, 139, 229, 152, 243, 4057},
    {"TVAnts", 419, 478, 464, 1001, 229, 270, 58, 90, 75, 118, 550},
};

/// Table III row.
struct PaperSelfBias {
  const char* app;
  double contrib_peer_pct, contrib_bytes_pct;
  double all_peer_pct, all_bytes_pct;
};

inline constexpr PaperSelfBias kPaperTable3[] = {
    {"PPLive", 0.95, 3.54, 0.10, 3.33},
    {"SopCast", 10.25, 17.71, 4.60, 19.45},
    {"TVAnts", 29.82, 56.31, 15.56, 56.06},
};

/// Table IV cell: {B'D, P'D, BD, PD, B'U, P'U, BU, PU}; negative means
/// the paper prints "-".
struct PaperAwareness {
  const char* metric;
  const char* app;
  double bpd, ppd, bd, pd;
  double bpu, ppu, bu, pu;
};

inline constexpr double kDash = -1.0;

inline constexpr PaperAwareness kPaperTable4[] = {
    {"BW", "PPLive", 95.9, 85.9, 95.6, 86.1, kDash, kDash, kDash, kDash},
    {"BW", "SopCast", 98.2, 83.3, 98.5, 85.3, kDash, kDash, kDash, kDash},
    {"BW", "TVAnts", 96.5, 83.2, 98.2, 89.6, kDash, kDash, kDash, kDash},
    {"AS", "PPLive", 6.5, 0.6, 12.8, 1.3, 0.8, 0.2, 1.8, 0.5},
    {"AS", "SopCast", 0.6, 0.7, 3.5, 3.9, 1.7, 0.7, 6.4, 3.9},
    {"AS", "TVAnts", 7.3, 3.3, 32.0, 13.5, 11.6, 1.8, 30.1, 9.6},
    {"CC", "PPLive", 6.5, 0.6, 13.1, 1.4, 1.1, 0.3, 2.1, 0.6},
    {"CC", "SopCast", 0.6, 0.8, 4.0, 4.4, 1.7, 0.8, 7.2, 4.4},
    {"CC", "TVAnts", 7.6, 4.0, 37.9, 16.3, 14.3, 3.1, 37.7, 12.5},
    {"NET", "PPLive", kDash, kDash, 9.9, 0.8, kDash, kDash, 1.4, 0.3},
    {"NET", "SopCast", kDash, kDash, 2.0, 2.6, kDash, kDash, 3.5, 2.6},
    {"NET", "TVAnts", kDash, kDash, 18.1, 6.7, kDash, kDash, 18.1, 5.4},
    {"HOP", "PPLive", 42.2, 41.1, 51.4, 42.4, 30.4, 40.4, 31.7, 41.0},
    {"HOP", "SopCast", 29.0, 40.7, 37.9, 48.0, 45.9, 43.0, 56.9, 49.8},
    {"HOP", "TVAnts", 62.1, 55.0, 81.1, 71.9, 57.8, 53.0, 78.9, 67.2},
};

/// Figure 2 intra/inter-AS traffic ratios reported in §IV-B.
struct PaperAsRatio {
  const char* app;
  double ratio;
};

inline constexpr PaperAsRatio kPaperFig2Ratios[] = {
    {"SopCast", 0.2},
    {"TVAnts", 1.93},
    {"PPLive", 0.98},
};

inline std::string paper_cell(double v, int precision = 1) {
  return v < 0 ? "-" : fmt(v, precision);
}

/// Runs PPLive, SopCast and TVAnts concurrently; results ordered
/// [pplive, sopcast, tvants]. With cfg.full_scale each application's
/// background population is set to the paper's full observed-peer
/// count (Table II's "observed total" column) — no count scaling;
/// the calendar-queue engine + SoA peer state carry the 181,729-peer
/// PPLive swarm directly.
inline std::vector<exp::RunResult> run_three_apps(
    const net::AsTopology& topo, const BenchConfig& cfg) {
  std::vector<exp::RunSpec> specs;
  for (auto profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants()}) {
    exp::RunSpec spec;
    spec.profile = std::move(profile);
    if (cfg.full_scale) {
      for (const PaperSummary& row : kPaperTable2) {
        if (spec.profile.name == row.app) {
          spec.profile.population.background_peers =
              static_cast<std::size_t>(row.observed_total);
        }
      }
    }
    spec.seed = cfg.seed;
    spec.duration = util::SimTime::seconds(cfg.seconds);
    specs.push_back(std::move(spec));
  }
  util::ThreadPool pool;
  return exp::run_experiments(topo, specs, pool);
}

}  // namespace peerscope::bench
