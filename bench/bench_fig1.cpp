// Figure 1: geographical breakdown of contacted peers (#), received
// (RX) and transmitted (TX) bytes per application, over
// {CN, HU, IT, FR, PL, *}.
//
// The paper presents this as stacked bars; we print the same series as
// percentages. Qualitative target: CN dominates peer counts, but a
// non-negligible byte fraction stays within Europe.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Figure 1: geographical breakdown (percent of peers / "
               "RX bytes / TX bytes) ===\n\n";

  const auto results = run_three_apps(topo, cfg);

  for (const auto& result : results) {
    const auto shares = aware::geo_breakdown(result.observations);
    if (cfg.outdir) {
      aware::write_geo_csv(
          *cfg.outdir / ("fig1_" + result.observations.app + ".csv"),
          result.observations.app, shares);
    }
    util::TextTable table{{result.observations.app, "# peers %", "RX %",
                           "TX %"}};
    for (const auto& share : shares) {
      table.add_row({share.cc.known() ? share.cc.to_string() : "*",
                     fmt(share.peer_pct), fmt(share.rx_bytes_pct),
                     fmt(share.tx_bytes_pct)});
    }
    std::cout << table.render() << '\n';
  }

  std::cout << "shape checks (must hold):\n";
  bool cn_dominates = true;
  bool eu_bytes_exceed_peers = true;
  for (const auto& result : results) {
    const auto shares = aware::geo_breakdown(result.observations);
    for (std::size_t i = 1; i < shares.size(); ++i) {
      if (shares[0].peer_pct <= shares[i].peer_pct) cn_dominates = false;
    }
    double eu_peers = 0, eu_rx = 0;
    for (std::size_t i = 1; i <= 4; ++i) {  // HU IT FR PL
      eu_peers += shares[i].peer_pct;
      eu_rx += shares[i].rx_bytes_pct;
    }
    if (eu_rx <= eu_peers) eu_bytes_exceed_peers = false;
  }
  std::cout << "  CN holds the plurality of contacted peers in every app: "
            << (cn_dominates ? "yes" : "NO") << '\n';
  std::cout << "  European byte share exceeds European peer share "
               "(the locality hint Fig. 1 motivates): "
            << (eu_bytes_exceed_peers ? "yes" : "NO") << '\n';
  return 0;
}
