// Microbenchmarks for the simulation substrate: event engine
// throughput, packet-train computation, routing queries, RNG.
#include <benchmark/benchmark.h>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/train.hpp"
#include "util/rng.hpp"

using namespace peerscope;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(util::SimTime::nanos(static_cast<std::int64_t>(
                             (i * 2654435761u) % 1'000'000'000)),
                         [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::Handle> handles;
    handles.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      handles.push_back(
          engine.schedule_at(util::SimTime::micros(i + 1), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      engine.cancel(handles[i]);
    }
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
}
BENCHMARK(BM_EngineCancelHeavy);

void BM_TransmitTrain(benchmark::State& state) {
  const net::AccessLink sender = net::AccessLink::lan100();
  const net::AccessLink receiver = net::AccessLink::lan100();
  const net::PathInfo path{18, util::SimTime::millis(40)};
  sim::LinkCursor up, down;
  util::Rng rng{1};
  sim::TrainSpec spec;
  spec.packet_count = static_cast<int>(state.range(0));
  spec.packet_bytes = 1250;
  std::int64_t t = 0;
  for (auto _ : state) {
    spec.start = util::SimTime::nanos(t += 1'000'000);
    const auto result =
        sim::transmit_train(spec, sender, up, receiver, down, path, rng);
    benchmark::DoNotOptimize(result.arrivals.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TransmitTrain)->Arg(13)->Arg(64);

void BM_TopologyPath(benchmark::State& state) {
  const net::AsTopology topo = net::make_reference_topology();
  using namespace net::refas;
  const net::Endpoint eu{net::Ipv4Addr{20, 0, 0, 5}, kAs2, net::kItaly,
                         net::Region::kEurope, 2};
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Endpoint cn{
        net::Ipv4Addr{30, 0, 0, static_cast<std::uint8_t>(1 + (i++ % 250))},
        kCnIspFirst, net::kChina, net::Region::kAsia, 4};
    benchmark::DoNotOptimize(topo.path(eu, cn).hops);
  }
}
BENCHMARK(BM_TopologyPath);

void BM_RngBelow(benchmark::State& state) {
  util::Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(15'000));
  }
}
BENCHMARK(BM_RngBelow);

void BM_RngWeightedPick(benchmark::State& state) {
  util::Rng rng{3};
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 0.1 + static_cast<double>(i % 7);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.weighted_pick(weights));
  }
}
BENCHMARK(BM_RngWeightedPick)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
