// Table II: per-application summary — mean/max stream rates (RX/TX),
// peers contacted, and contributing peers, paper vs measured.
//
// Absolute counts are scaled (300 s vs 1 h, ~1/12 swarm; DESIGN.md §6);
// the orderings and rate magnitudes are the reproduction target.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

int main() {
  // JSON session first: it only claims the metrics/trace slots the
  // explicit sessions below leave free (see BenchJsonSession docs).
  bench::BenchJsonSession json_session{"bench_table2"};
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  bench::SeriesSession series_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Table II: experiment summary (paper vs measured, "
            << cfg.seconds << " s runs) ===\n\n";

  const auto results = run_three_apps(topo, cfg);

  util::TextTable table{{"App", "src", "RX kbps mean", "RX max", "TX kbps mean",
                         "TX max", "peers mean", "peers max", "cRX mean",
                         "cRX max", "cTX mean", "cTX max", "observed"}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& paper = kPaperTable2[i];
    const aware::ExperimentSummary s =
        aware::summarize(results[i].observations);
    if (cfg.outdir) {
      aware::write_summary_csv(
          *cfg.outdir / ("table2_" + results[i].observations.app + ".csv"),
          results[i].observations.app, s);
    }
    table.add_row({paper.app, "paper", fmt(paper.rx_mean, 0),
                   fmt(paper.rx_max, 0), fmt(paper.tx_mean, 0),
                   fmt(paper.tx_max, 0), fmt(paper.peers_mean, 0),
                   fmt(paper.peers_max, 0), fmt(paper.contrib_rx_mean, 0),
                   fmt(paper.contrib_rx_max, 0), fmt(paper.contrib_tx_mean, 0),
                   fmt(paper.contrib_tx_max, 0),
                   fmt(paper.observed_total, 0)});
    table.add_row({"", "ours", fmt(s.rx_kbps_mean, 0), fmt(s.rx_kbps_max, 0),
                   fmt(s.tx_kbps_mean, 0), fmt(s.tx_kbps_max, 0),
                   fmt(s.all_peers_mean, 0),
                   fmt(static_cast<double>(s.all_peers_max), 0),
                   fmt(s.contrib_rx_mean, 0),
                   fmt(static_cast<double>(s.contrib_rx_max), 0),
                   fmt(s.contrib_tx_mean, 0),
                   fmt(static_cast<double>(s.contrib_tx_max), 0),
                   fmt(static_cast<double>(s.observed_total), 0)});
    table.add_rule();
  }
  std::cout << table.render();

  std::cout << "\nshape checks (must hold):\n";
  const auto peers = [&](std::size_t i) {
    return aware::summarize(results[i].observations).all_peers_mean;
  };
  const auto tx = [&](std::size_t i) {
    return aware::summarize(results[i].observations).tx_kbps_mean;
  };
  std::cout << "  peers(PPLive) > peers(SopCast) > peers(TVAnts): "
            << (peers(0) > peers(1) && peers(1) > peers(2) ? "yes" : "NO")
            << '\n';
  std::cout << "  PPLive TX >> its RX (upload exploitation): "
            << (tx(0) > 3 * aware::summarize(results[0].observations)
                                .rx_kbps_mean
                    ? "yes"
                    : "NO")
            << '\n';
  return 0;
}
