// Table I: the NAPA-WINE testbed — hosts, sites, countries, ASes and
// access types. Regenerated from exp::Testbed against the reference
// topology; this is the configuration every other bench runs on.
#include <iostream>

#include "bench/harness.hpp"
#include "exp/testbed.hpp"

using namespace peerscope;

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const net::AsTopology topo = net::make_reference_topology();
  const exp::Testbed testbed = exp::Testbed::table1();

  std::cout << "=== Table I: testbed composition ===\n\n";
  util::TextTable table{
      {"Host", "Site", "CC", "AS", "Access", "Nat", "FW"}};
  for (const auto& row : testbed.rows(topo)) {
    table.add_row({row.hosts, row.site, row.country, row.as_label,
                   row.access, row.nat ? "Y" : "-",
                   row.firewall ? "Y" : "-"});
  }
  std::cout << table.render();

  std::cout << "\nsummary: " << testbed.host_count() << " hosts, "
            << testbed.site_count() << " sites, "
            << testbed.institution_as_count() << " institution ASes, "
            << testbed.home_as_count() << " home-ISP ASes, "
            << testbed.home_host_count() << " home hosts\n";
  std::cout << "(paper text reports 44 peers / 37 institution PCs / 7 home "
               "PCs; the printed\n table enumerates 46 hosts — we reproduce "
               "the table as published.)\n";
  return 0;
}
