// Microbenchmark: end-to-end swarm simulation throughput — how many
// simulated seconds per wall second each application profile achieves.
#include <benchmark/benchmark.h>

#include "bench/harness.hpp"
#include "exp/testbed.hpp"
#include "p2p/swarm.hpp"

using namespace peerscope;

namespace {

void run_profile(benchmark::State& state, p2p::SystemProfile profile,
                 std::size_t background) {
  static const net::AsTopology topo = net::make_reference_topology();
  static const exp::Testbed testbed = exp::Testbed::table1();
  profile.population.background_peers = background;
  const auto sim_seconds = static_cast<std::int64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    p2p::SwarmConfig config;
    config.profile = profile;
    config.seed = seed++;
    config.duration = util::SimTime::seconds(sim_seconds);
    p2p::Swarm swarm{topo, testbed.probes(), config};
    swarm.run();
    benchmark::DoNotOptimize(swarm.counters().chunks_delivered);
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(sim_seconds),
      benchmark::Counter::kIsRate);
}

void BM_SwarmTvants(benchmark::State& state) {
  run_profile(state, p2p::SystemProfile::tvants(), 520);
}
BENCHMARK(BM_SwarmTvants)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_SwarmSopcast(benchmark::State& state) {
  run_profile(state, p2p::SystemProfile::sopcast(), 2'000);
}
BENCHMARK(BM_SwarmSopcast)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_SwarmPplive(benchmark::State& state) {
  run_profile(state, p2p::SystemProfile::pplive(), 15'000);
}
BENCHMARK(BM_SwarmPplive)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN with the harness sessions wrapped around the
// benchmark loop, so PEERSCOPE_BENCH_JSON / _SERIES capture the swarm
// runs for the CI trajectory gate. All sessions are inert when their
// variables are unset — default output matches BENCHMARK_MAIN exactly.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    bench::BenchJsonSession json_session{"bench_micro_swarm"};
    bench::MetricsSession metrics_session;
    bench::TraceSession trace_session;
    bench::SeriesSession series_session;
    ::benchmark::RunSpecifiedBenchmarks();
  }
  ::benchmark::Shutdown();
  return 0;
}
