// Replication sensitivity: Table IV's key cells as mean ± stddev over
// independent seeds — how stable the reproduced statistics are, and
// whether the paper's qualitative conclusions survive run-to-run noise.
#include <iostream>

#include "bench/harness.hpp"
#include "exp/sensitivity.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

std::string pm(const util::OnlineStats& s) {
  if (s.count() == 0) return "-";
  return fmt(s.mean()) + "±" + fmt(s.stddev());
}

}  // namespace

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  const std::uint64_t seeds[] = {cfg.seed,     cfg.seed + 1, cfg.seed + 2,
                                 cfg.seed + 3, cfg.seed + 4};
  const auto duration = util::SimTime::seconds(
      std::min<std::int64_t>(cfg.seconds, 150));  // 5 replications each

  std::cout << "=== Replication sensitivity: mean ± stddev over "
            << std::size(seeds) << " seeds (" << duration.seconds()
            << " s runs) ===\n\n";

  util::ThreadPool pool;
  util::TextTable table{{"App", "metric", "B'D%", "P'D%", "BD%", "PD%",
                         "self-bias bytes%"}};
  bool tvants_above_sopcast = true;
  double tvants_as_b = 0, sopcast_as_b = 0, sopcast_as_sd = 0;

  for (const auto& profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants()}) {
    const auto result =
        exp::run_sensitivity(topo, profile, duration, seeds, pool);
    for (const auto& metric : result.metrics) {
      table.add_row({profile.name, aware::to_string(metric.metric),
                     pm(metric.download.b_prime),
                     pm(metric.download.p_prime), pm(metric.download.b),
                     pm(metric.download.p),
                     metric.metric == aware::Metric::kBw
                         ? pm(result.self_bias_bytes_pct)
                         : ""});
    }
    table.add_rule();
    if (profile.name == "TVAnts") {
      tvants_as_b = result.metrics[1].download.b_prime.mean();
    }
    if (profile.name == "SopCast") {
      sopcast_as_b = result.metrics[1].download.b_prime.mean();
      sopcast_as_sd = result.metrics[1].download.b_prime.stddev();
    }
  }
  std::cout << table.render();

  tvants_above_sopcast = tvants_as_b > sopcast_as_b + 2 * sopcast_as_sd;
  std::cout << "\nshape checks (must hold):\n"
            << "  TVAnts AS byte-preference exceeds SopCast's by > 2 sigma: "
            << (tvants_above_sopcast ? "yes" : "NO") << " ("
            << fmt(tvants_as_b) << " vs " << fmt(sopcast_as_b) << "±"
            << fmt(sopcast_as_sd) << ")\n";
  return 0;
}
