// Ablation: planted-bias sweep (DESIGN.md §4). Sweeps the same-AS
// scheduling weight and the bandwidth weight of a TVAnts-like swarm and
// reports the preferences the black-box pipeline recovers. Validates
// the methodology end-to-end: recovered byte bias must be monotone in
// the planted weight, and switching a bias off must flatten B' to P'.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

exp::RunSpec base_spec(const BenchConfig& cfg) {
  exp::RunSpec spec;
  spec.profile = p2p::SystemProfile::tvants();
  spec.profile.population.background_peers = 520;
  spec.seed = cfg.seed;
  spec.duration = util::SimTime::seconds(std::min<std::int64_t>(
      cfg.seconds, 120));  // the sweep runs many experiments
  return spec;
}

}  // namespace

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();

  std::cout << "=== Ablation A: same-AS scheduling weight vs recovered AS "
               "preference (3 seeds per point) ===\n\n";
  {
    util::TextTable table{{"same_as weight", "B'D%", "P'D%", "B'/P'"}};
    double weight_off = 0, weight_max = 0;
    bool first = true;
    double previous = -1.0;
    bool monotone = true;
    for (const double weight : {0.0, 0.7, 1.4, 2.8, 5.6, 11.2}) {
      // The same-AS contributor pool is small, so single runs are
      // noisy; aggregate the preference counts over three seeds.
      aware::PreferenceCounts counts;
      for (std::uint64_t seed_offset = 0; seed_offset < 3; ++seed_offset) {
        exp::RunSpec spec = base_spec(cfg);
        spec.profile.select.same_as = weight;
        spec.seed = cfg.seed + seed_offset;
        const auto result = exp::run_experiment(topo, spec);
        aware::PreferenceOptions opt;
        opt.exclude_napa = true;
        for (const auto& per_probe : result.observations.per_probe) {
          counts.merge(aware::evaluate_preference(
              per_probe, aware::as_partition(), opt));
        }
      }
      const double b = counts.byte_pct();
      const double p = counts.peer_pct();
      table.add_row({fmt(weight, 1), fmt(b), fmt(p),
                     p > 0 ? fmt(b / p, 2) : "-"});
      if (first) {
        weight_off = b;
        first = false;
      }
      weight_max = b;
      if (b < previous - 2.0) monotone = false;  // noise tolerance
      previous = b;
    }
    std::cout << table.render();
    std::cout << "recovered AS byte-preference rises with the planted "
                 "weight: "
              << (monotone && weight_max > 1.8 * weight_off ? "yes" : "NO")
              << " (" << fmt(weight_off) << "% -> " << fmt(weight_max)
              << "%)\n\n";
  }

  std::cout << "=== Ablation B: bandwidth weight vs recovered BW "
               "preference ===\n\n";
  {
    util::TextTable table{{"bandwidth weight", "B'D%", "P'D%"}};
    double weight_off_b = 0;
    bool first = true;
    for (const double weight : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      exp::RunSpec spec = base_spec(cfg);
      spec.profile.select.bandwidth = weight;
      // Isolate BW: no locality bias in this sweep.
      spec.profile.select.same_as = 0.0;
      spec.profile.discovery_as_bias = 0.0;
      const auto result = exp::run_experiment(topo, spec);
      const auto rows = aware::awareness_table(result.observations);
      const auto& cell = rows[0].download;  // BW row
      const double b = cell.b_prime_pct.value_or(0);
      table.add_row({fmt(weight, 2), fmt(b),
                     fmt_opt(cell.p_prime_pct)});
      if (first) {
        weight_off_b = b;
        first = false;
      }
    }
    std::cout << table.render();
    // The sweep's finding is *robustness*, not monotonicity: even with
    // the selection weight off, high-bandwidth peers carry ~all bytes,
    // because capacity physics (DSL uplinks cannot serve the stream)
    // and their earlier chunk availability dominate. The explicit
    // weight only sharpens the margins. This is the paper's result in
    // its strongest form: BW "awareness" is partly inevitable.
    std::cout << "BW byte-preference persists with the selection weight "
                 "off (emergent from capacity alone): "
              << (weight_off_b > 90.0 ? "yes" : "NO") << " ("
              << fmt(weight_off_b) << "% at weight 0)\n\n";
  }

  std::cout << "=== Ablation C: discovery AS bias vs recovered peer-wise "
               "preference ===\n\n";
  {
    util::TextTable table{{"discovery_as_bias", "P'D%", "B'D%"}};
    double first_p = 0, last_p = 0;
    bool first = true;
    for (const double bias : {0.0, 0.02, 0.05, 0.1}) {
      exp::RunSpec spec = base_spec(cfg);
      spec.profile.discovery_as_bias = bias;
      spec.profile.select.same_as = 0.0;  // isolate discovery from scheduling
      const auto result = exp::run_experiment(topo, spec);
      const auto rows = aware::awareness_table(result.observations);
      const auto& cell = rows[1].download;
      table.add_row({fmt(bias, 2), fmt_opt(cell.p_prime_pct),
                     fmt_opt(cell.b_prime_pct)});
      if (first) {
        first_p = cell.p_prime_pct.value_or(0);
        first = false;
      }
      last_p = cell.p_prime_pct.value_or(0);
    }
    std::cout << table.render();
    std::cout << "discovery bias moves the PEER-wise preference (the "
                 "TVAnts-vs-PPLive distinction): "
              << (last_p > first_p ? "yes" : "NO") << '\n';
  }
  return 0;
}
