// Microbenchmarks for the trace substrate: capture-record ingestion,
// binary and pcap serialisation, and the offline rebuild path — the
// costs that bound how big a stored experiment can get.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "trace/io.hpp"
#include "trace/pcap.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

using namespace peerscope;

namespace {

std::vector<trace::PacketRecord> synth(std::size_t n) {
  util::Rng rng{42};
  std::vector<trace::PacketRecord> records;
  records.reserve(n);
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ts += static_cast<std::int64_t>(rng.below(200'000)) + 1;
    trace::PacketRecord r;
    r.ts = util::SimTime::nanos(ts);
    r.remote =
        net::Ipv4Addr{static_cast<std::uint32_t>(0x14000000u + rng.below(800))};
    r.bytes = rng.chance(0.8) ? 1250 : 120;
    r.kind = r.bytes == 1250 ? sim::PacketKind::kVideo
                             : sim::PacketKind::kSignaling;
    r.dir = rng.chance(0.6) ? trace::Direction::kRx : trace::Direction::kTx;
    r.ttl = static_cast<std::uint8_t>(100 + rng.below(25));
    records.push_back(r);
  }
  return records;
}

std::filesystem::path scratch_file(const char* name) {
  return std::filesystem::temp_directory_path() /
         (std::string{"peerscope_bench_"} + std::to_string(::getpid()) +
          name);
}

void BM_SinkIngest(benchmark::State& state) {
  const auto records = synth(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    trace::ProbeSink sink{net::Ipv4Addr{10, 0, 0, 1}, false};
    for (const auto& r : records) sink.on_packet(r);
    benchmark::DoNotOptimize(sink.flows().flow_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SinkIngest)->Arg(100'000);

void BM_TraceWrite(benchmark::State& state) {
  const auto records = synth(static_cast<std::size_t>(state.range(0)));
  const auto path = scratch_file("w.psct");
  for (auto _ : state) {
    trace::write_trace(path, net::Ipv4Addr{10, 0, 0, 1}, records);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 19);
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceWrite)->Arg(100'000);

void BM_TraceReadAndRebuild(benchmark::State& state) {
  const auto records = synth(static_cast<std::size_t>(state.range(0)));
  const auto path = scratch_file("r.psct");
  trace::write_trace(path, net::Ipv4Addr{10, 0, 0, 1}, records);
  for (auto _ : state) {
    const auto file = trace::read_trace(path);
    const auto table =
        trace::FlowTable::from_records(file.probe, file.records);
    benchmark::DoNotOptimize(table.total_rx_bytes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceReadAndRebuild)->Arg(100'000);

void BM_PcapWrite(benchmark::State& state) {
  const auto records = synth(static_cast<std::size_t>(state.range(0)));
  const auto path = scratch_file("w.pcap");
  for (auto _ : state) {
    trace::write_pcap(path, net::Ipv4Addr{10, 0, 0, 1}, records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_PcapWrite)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
