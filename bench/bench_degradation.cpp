// Degradation sweep: does the paper's methodology survive a hostile
// network? Re-runs the three applications under increasing impairment
// (bursty loss, capture reordering/duplication, link outages, peer
// churn) and reports, per level, the Table IV BW row and the Figure 2
// intra/inter-AS ratios next to the clean baseline, plus the recovery
// error. The conclusions must be robust: the BW preference and the
// ratio ordering have to survive <= 5% bursty loss with churn, or the
// reproduction would only hold on lossless campus captures.
//
// Impaired levels analyse with the robust BW estimator (ipg_discard=2):
// capture duplication/reordering fabricate near-zero inter-packet gaps
// that the plain minimum would read as infinite-capacity paths.
#include <cmath>
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

struct Level {
  const char* name;
  sim::ImpairmentSpec impairment;
  p2p::ChurnSpec churn;
  [[nodiscard]] bool faulty() const {
    return impairment.enabled() || churn.enabled();
  }
};

std::vector<Level> make_levels() {
  std::vector<Level> levels;
  levels.push_back({"clean", {}, {}});

  Level mild{"loss 1% burst 3", {}, {}};
  mild.impairment.loss_rate = 0.01;
  mild.impairment.loss_burst = 3.0;
  levels.push_back(mild);

  Level medium{"loss 3% + reorder/dup", {}, {}};
  medium.impairment.loss_rate = 0.03;
  medium.impairment.loss_burst = 3.0;
  medium.impairment.reorder_rate = 0.005;
  medium.impairment.duplicate_rate = 0.005;
  levels.push_back(medium);

  Level harsh{"loss 5% + churn + outages", {}, {}};
  harsh.impairment.loss_rate = 0.05;
  harsh.impairment.loss_burst = 4.0;
  harsh.impairment.reorder_rate = 0.01;
  harsh.impairment.duplicate_rate = 0.01;
  harsh.impairment.outage_per_s = 0.02;  // one ~200 ms outage per 50 s
  harsh.churn.probe_session_s = 120.0;
  harsh.churn.bg_session_s = 90.0;
  harsh.churn.nat_connect_failure = 0.3;
  harsh.churn.firewall_connect_failure = 0.3;
  levels.push_back(harsh);
  return levels;
}

std::vector<exp::RunResult> run_level(const net::AsTopology& topo,
                                      const BenchConfig& cfg,
                                      const Level& level) {
  std::vector<exp::RunSpec> specs;
  for (auto profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants()}) {
    exp::RunSpec spec;
    spec.profile = std::move(profile);
    spec.seed = cfg.seed;
    spec.duration = util::SimTime::seconds(cfg.seconds);
    spec.impairment = level.impairment;
    spec.churn = level.churn;
    specs.push_back(std::move(spec));
  }
  util::ThreadPool pool;
  return exp::run_experiments(topo, specs, pool);
}

struct LevelOutcome {
  // Per app [pplive, sopcast, tvants].
  double bw_bprime[3] = {0, 0, 0};
  double bw_pprime[3] = {0, 0, 0};
  double as_ratio[3] = {0, 0, 0};
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t crashes = 0;
};

LevelOutcome analyse(const std::vector<exp::RunResult>& results,
                     bool faulty) {
  LevelOutcome outcome;
  aware::AwarenessConfig cfg;
  if (faulty) cfg.bw.ipg_discard = 2;
  for (std::size_t app = 0; app < results.size(); ++app) {
    const auto rows = aware::awareness_table(results[app].observations, cfg);
    const auto& bw = rows[0].download;  // rows[0] is the BW metric
    outcome.bw_bprime[app] = bw.b_prime_pct.value_or(0.0);
    outcome.bw_pprime[app] = bw.p_prime_pct.value_or(0.0);
    outcome.as_ratio[app] =
        aware::as_traffic_matrix(results[app].observations).intra_inter_ratio;
    outcome.timeouts += results[app].counters.timeouts;
    outcome.retries += results[app].counters.chunks_retried;
    outcome.crashes += results[app].counters.probe_crashes;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::BenchJsonSession json_session{"degradation"};
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Degradation sweep: Table IV BW row + Figure 2 ratios "
               "under impairment ===\n\n";

  const auto levels = make_levels();
  std::vector<LevelOutcome> outcomes;
  outcomes.reserve(levels.size());

  constexpr const char* kApps[3] = {"PPLive", "SopCast", "TVAnts"};
  util::TextTable table{{"level", "app", "B'D%", "P'D%", "R(AS)",
                         "timeouts", "retries", "crashes"}};
  for (const auto& level : levels) {
    const auto results = run_level(topo, cfg, level);
    outcomes.push_back(analyse(results, level.faulty()));
    const LevelOutcome& outcome = outcomes.back();
    for (std::size_t app = 0; app < 3; ++app) {
      table.add_row({app == 0 ? level.name : "", kApps[app],
                     fmt(outcome.bw_bprime[app]), fmt(outcome.bw_pprime[app]),
                     fmt(outcome.as_ratio[app], 2),
                     app == 0 ? util::TextTable::count(outcome.timeouts) : "",
                     app == 0 ? util::TextTable::count(outcome.retries) : "",
                     app == 0 ? util::TextTable::count(outcome.crashes) : ""});
    }
    table.add_rule();
  }
  std::cout << table.render();

  // Recovery error: how far each impaired level's estimates drift from
  // the clean baseline (mean absolute difference over the three apps).
  const LevelOutcome& base = outcomes.front();
  std::cout << "\nrecovery error vs clean baseline (mean |delta| over apps):\n";
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    double db = 0, dp = 0;
    for (std::size_t app = 0; app < 3; ++app) {
      db += std::abs(outcomes[i].bw_bprime[app] - base.bw_bprime[app]);
      dp += std::abs(outcomes[i].bw_pprime[app] - base.bw_pprime[app]);
    }
    std::cout << "  " << levels[i].name << ": B'D " << fmt(db / 3.0)
              << " pts, P'D " << fmt(dp / 3.0) << " pts\n";
  }

  std::cout << "\nshape checks (must hold at every level, clean through "
               "5% loss + churn):\n";
  bool bw_survives = true;
  bool ordering_survives = true;
  bool faults_fired = true;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const LevelOutcome& o = outcomes[i];
    for (std::size_t app = 0; app < 3; ++app) {
      // Same thresholds bench_table4 checks on the clean run.
      if (!(o.bw_bprime[app] > 90 && o.bw_pprime[app] > 65)) {
        bw_survives = false;
      }
    }
    // Figure 2 ordering: TVAnts keeps a clear intra-AS preference and
    // stays the most network-aware application at every level. The
    // absolute SopCast < 1.5 threshold is a clean-reproduction check
    // (bench_fig2); a ratio near 1 wobbles across the line once loss
    // thins the byte counts, but the ordering itself is stable.
    if (!(o.as_ratio[2] > 1.5 && o.as_ratio[2] > o.as_ratio[1] &&
          o.as_ratio[2] > o.as_ratio[0])) {
      ordering_survives = false;
    }
    if (i == 0 && !(o.as_ratio[1] < 1.5)) ordering_survives = false;
    if (i > 0 && o.timeouts == 0 && o.retries == 0 && o.crashes == 0) {
      faults_fired = false;  // the injection level did nothing
    }
  }
  std::cout << "  BW preference survives (B' > 90, P' > 65 at all levels): "
            << (bw_survives ? "yes" : "NO") << '\n';
  std::cout << "  Fig.2 ratio ordering survives (TVAnts > 1.5 and largest "
               "at all levels): "
            << (ordering_survives ? "yes" : "NO") << '\n';
  std::cout << "  fault injection visibly active at impaired levels: "
            << (faults_fired ? "yes" : "NO") << '\n';
  return 0;
}
