// Discovery resilience sweep: does the paper's network-awareness
// picture survive losing the tracker? Re-runs the three applications
// through the pluggable discovery subsystem under increasingly hostile
// control-plane scenarios — extracted tracker (clean), a mid-run hard
// tracker outage with DHT failover, the same outage with gossip
// failover plus NAT traversal, and a flash crowd on top — and reports,
// per scenario, the Figure 2 intra/inter-AS ratios and contributor
// counts next to the failover/re-join telemetry.
//
// The claims checked: every scenario with a fallback completes with
// zero missed re-joins under a 30 s SLO, the failover machinery
// demonstrably fired in the outage scenarios, and the Figure 2
// contributor ordering (TVAnts most network-aware, strongest intra-AS
// preference) survives every scenario — tracker death must not change
// which application looks network-aware.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

struct Scenario {
  const char* name;
  p2p::DiscoverySpec discovery;
  [[nodiscard]] bool outage() const {
    return discovery.tracker_outages();
  }
};

std::vector<Scenario> make_scenarios(std::int64_t seconds) {
  // The outage window sits mid-run: starts a third in, lasts a third —
  // long enough that every swarm exhausts its tracker retries and must
  // fail over, with a full third of the run left to recover in.
  const auto outage_start = util::SimTime::seconds(seconds / 3);
  const auto outage_len = util::SimTime::seconds(seconds / 3);
  const auto deadline = util::SimTime::seconds(30);

  std::vector<Scenario> scenarios;

  Scenario tracker{"tracker (extracted)", {}};
  tracker.discovery.primary = p2p::DiscoveryBackendKind::kTracker;
  tracker.discovery.rejoin_deadline = deadline;
  scenarios.push_back(tracker);

  Scenario dht{"outage -> dht", {}};
  dht.discovery.primary = p2p::DiscoveryBackendKind::kTracker;
  dht.discovery.fallback = p2p::DiscoveryBackendKind::kDht;
  dht.discovery.tracker_outage_start = outage_start;
  dht.discovery.tracker_outage_duration = outage_len;
  dht.discovery.rejoin_deadline = deadline;
  scenarios.push_back(dht);

  Scenario gossip{"outage -> gossip + nat", {}};
  gossip.discovery.primary = p2p::DiscoveryBackendKind::kTracker;
  gossip.discovery.fallback = p2p::DiscoveryBackendKind::kGossip;
  gossip.discovery.tracker_outage_start = outage_start;
  gossip.discovery.tracker_outage_duration = outage_len;
  gossip.discovery.rejoin_deadline = deadline;
  gossip.discovery.nat.enabled = true;
  scenarios.push_back(gossip);

  Scenario crowd{"outage + flash crowd", {}};
  crowd.discovery.primary = p2p::DiscoveryBackendKind::kTracker;
  crowd.discovery.fallback = p2p::DiscoveryBackendKind::kDht;
  crowd.discovery.tracker_outage_start = outage_start;
  crowd.discovery.tracker_outage_duration = outage_len;
  crowd.discovery.rejoin_deadline = deadline;
  crowd.discovery.flash_crowd_at = util::SimTime::seconds(seconds / 6);
  crowd.discovery.flash_crowd_arrivals = 60;
  crowd.discovery.session_tail_alpha = 1.5;
  scenarios.push_back(crowd);
  return scenarios;
}

std::vector<exp::RunResult> run_scenario(const net::AsTopology& topo,
                                         const BenchConfig& cfg,
                                         const Scenario& scenario) {
  std::vector<exp::RunSpec> specs;
  for (auto profile :
       {p2p::SystemProfile::pplive(), p2p::SystemProfile::sopcast(),
        p2p::SystemProfile::tvants()}) {
    exp::RunSpec spec;
    spec.profile = std::move(profile);
    spec.seed = cfg.seed;
    spec.duration = util::SimTime::seconds(cfg.seconds);
    spec.discovery = scenario.discovery;
    specs.push_back(std::move(spec));
  }
  util::ThreadPool pool;
  return exp::run_experiments(topo, specs, pool);
}

struct ScenarioOutcome {
  // Per app [pplive, sopcast, tvants].
  double as_ratio[3] = {0, 0, 0};
  double contrib_rx[3] = {0, 0, 0};
  p2p::DiscoveryCounters discovery;
};

ScenarioOutcome analyse(const std::vector<exp::RunResult>& results) {
  ScenarioOutcome outcome;
  for (std::size_t app = 0; app < results.size(); ++app) {
    const auto summary = aware::summarize(results[app].observations);
    outcome.contrib_rx[app] = summary.contrib_rx_mean;
    outcome.as_ratio[app] =
        aware::as_traffic_matrix(results[app].observations).intra_inter_ratio;
    const auto& d = results[app].counters.discovery;
    auto& t = outcome.discovery;
    t.failovers += d.failovers;
    t.recoveries += d.recoveries;
    t.joins_ok += d.joins_ok;
    t.join_retries += d.join_retries;
    t.tracker_failures += d.tracker_failures;
    t.dht_lookups += d.dht_lookups;
    t.gossip_exchanges += d.gossip_exchanges;
    t.nat_relayed += d.nat_relayed;
    t.nat_blocked += d.nat_blocked;
    t.flash_arrivals += d.flash_arrivals;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::BenchJsonSession json_session{"discovery"};
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Discovery resilience: Figure 2 ratios under tracker "
               "outages, failover, NAT, flash crowds ===\n\n";

  const auto scenarios = make_scenarios(cfg.seconds);
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(scenarios.size());

  constexpr const char* kApps[3] = {"PPLive", "SopCast", "TVAnts"};
  util::TextTable table{{"scenario", "app", "R(AS)", "contribs", "failovers",
                         "recoveries", "retries", "trk-fail"}};
  for (const auto& scenario : scenarios) {
    // run_experiment throws DiscoveryDegraded on a missed re-join, so
    // reaching the table at all certifies the 30 s SLO held.
    const auto results = run_scenario(topo, cfg, scenario);
    outcomes.push_back(analyse(results));
    const ScenarioOutcome& o = outcomes.back();
    for (std::size_t app = 0; app < 3; ++app) {
      table.add_row(
          {app == 0 ? scenario.name : "", kApps[app],
           fmt(o.as_ratio[app], 2), fmt(o.contrib_rx[app], 0),
           app == 0 ? util::TextTable::count(o.discovery.failovers) : "",
           app == 0 ? util::TextTable::count(o.discovery.recoveries) : "",
           app == 0 ? util::TextTable::count(o.discovery.join_retries) : "",
           app == 0 ? util::TextTable::count(o.discovery.tracker_failures)
                    : ""});
    }
    table.add_rule();
  }
  std::cout << table.render();

  std::cout << "\nshape checks:\n";
  bool all_rejoined = true;  // no DiscoveryDegraded escaped above
  bool failover_fired = true;
  bool ordering_survives = true;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ScenarioOutcome& o = outcomes[i];
    if (scenarios[i].outage() &&
        (o.discovery.failovers == 0 || o.discovery.tracker_failures == 0)) {
      failover_fired = false;  // the outage did nothing
    }
    // Figure 2 contributor ordering: TVAnts keeps the strongest
    // intra-AS preference and stays the most network-aware app in
    // every scenario, tracker or no tracker.
    if (!(o.as_ratio[2] > 1.5 && o.as_ratio[2] > o.as_ratio[1] &&
          o.as_ratio[2] > o.as_ratio[0])) {
      ordering_survives = false;
    }
  }
  std::cout << "  all swarms re-joined within the 30 s SLO: "
            << (all_rejoined ? "yes" : "NO") << '\n';
  std::cout << "  failover fired in every outage scenario: "
            << (failover_fired ? "yes" : "NO") << '\n';
  std::cout << "  Fig.2 ratio ordering survives every scenario (TVAnts > "
               "1.5 and largest): "
            << (ordering_survives ? "yes" : "NO") << '\n';
  return 0;
}
