// Figure 2: average traffic exchanged between high-bandwidth probes
// across Autonomous Systems, per application — printed as the AS x AS
// matrix (kB means) with the intra-AS diagonal highlighted, plus the
// intra/inter ratio R the paper reports (TVAnts 1.93, PPLive 0.98,
// SopCast 0.2). Includes the PPLive-Popular variant the discussion
// singles out (strong locality, mostly hop-0 traffic).
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

namespace {

void print_matrix(const aware::ExperimentObservations& data) {
  const aware::AsMatrix matrix = aware::as_traffic_matrix(data);
  std::vector<std::string> header{data.app + " [kB]"};
  for (const auto as : matrix.ases) header.push_back("to " + as.to_string());
  util::TextTable table{header};
  for (std::size_t i = 0; i < matrix.ases.size(); ++i) {
    std::vector<std::string> row{"from " + matrix.ases[i].to_string()};
    for (std::size_t j = 0; j < matrix.ases.size(); ++j) {
      std::string cell = fmt(matrix.at(i, j) / 1e3, 0);
      if (i == j) cell = "[" + cell + "]";  // intra-AS diagonal
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
  std::cout << "R (intra/inter, same-subnet pairs excluded as in §IV-B) = "
            << fmt(matrix.intra_inter_ratio, 2)
            << "   [including LAN pairs: "
            << fmt(matrix.intra_inter_ratio_with_lan, 2) << "]\n\n";
}

}  // namespace

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Figure 2: mean exchanged data among institution ASes "
               "(high-bw probes) ===\n\n";

  auto results = run_three_apps(topo, cfg);
  // Add the PPLive-Popular experiment (4th panel of the discussion).
  exp::RunSpec popular;
  popular.profile = p2p::SystemProfile::pplive_popular();
  popular.seed = cfg.seed;
  popular.duration = util::SimTime::seconds(cfg.seconds);
  results.push_back(exp::run_experiment(topo, popular));

  for (const auto& result : results) {
    print_matrix(result.observations);
    if (cfg.outdir) {
      aware::write_matrix_csv(
          *cfg.outdir / ("fig2_" + result.observations.app + ".csv"),
          result.observations.app,
          aware::as_traffic_matrix(result.observations));
    }
  }

  std::cout << "paper ratios: ";
  for (const auto& paper : kPaperFig2Ratios) {
    std::cout << paper.app << " R=" << fmt(paper.ratio, 2) << "  ";
  }
  std::cout << "\n\nshape checks (must hold):\n";
  const double r_pplive =
      aware::as_traffic_matrix(results[0].observations).intra_inter_ratio;
  const double r_sopcast =
      aware::as_traffic_matrix(results[1].observations).intra_inter_ratio;
  const double r_tvants =
      aware::as_traffic_matrix(results[2].observations).intra_inter_ratio;
  const double r_popular =
      aware::as_traffic_matrix(results[3].observations).intra_inter_ratio;
  std::cout << "  R(TVAnts) > 1.5 (clear intra-AS preference, paper 1.93): "
            << (r_tvants > 1.5 ? "yes" : "NO") << " (" << fmt(r_tvants, 2)
            << ")\n";
  std::cout << "  R(SopCast) shows no intra-AS preference (< 1.5, paper "
               "0.2): "
            << (r_sopcast < 1.5 ? "yes" : "NO") << " (" << fmt(r_sopcast, 2)
            << ")\n";
  std::cout << "  R(TVAnts) > R(SopCast): "
            << (r_tvants > r_sopcast ? "yes" : "NO") << '\n';
  std::cout << "  PPLive intra-AS traffic is mostly hop-0/LAN (with-LAN "
               "ratio >> subnet-excluded R, paper's §IV-B observation): "
            << (aware::as_traffic_matrix(results[0].observations)
                        .intra_inter_ratio_with_lan > 3 * r_pplive
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "  PPLive-Popular shows the strongest LAN-local intra-AS "
               "bias: "
            << (aware::as_traffic_matrix(results[3].observations)
                        .intra_inter_ratio_with_lan >
                        aware::as_traffic_matrix(results[0].observations)
                            .intra_inter_ratio_with_lan
                    ? "yes"
                    : "NO")
            << " (with-LAN " << fmt(r_popular, 2) << " ex-LAN)\n";
  return 0;
}
