// bench_micro_engine — event-core throughput, isolated from the rest
// of the simulator.
//
// Replays the same synthetic swarm-shaped workload (50k peers by
// default; the paper-true 181,729-peer swarm under
// PEERSCOPE_BENCH_FULL_SCALE) through two schedulers and prints
// events/sec for each:
//
//   legacy-heap    the pre-calendar engine verbatim: std::priority_queue
//                  of (at, seq) items + std::unordered_map<seq,
//                  std::function> for callback storage and cancellation
//   calendar-soa   sim::Engine today: calendar queue + slab event pool
//                  with inline callable storage
//
// The workload mimics what the swarm actually schedules: per-peer tick
// chains, fan-out request events with 24+-byte captures (beyond
// std::function's small-object buffer, so the legacy path pays the
// same per-event allocation the real swarm did), and a cancellation
// stream. The committed perf trajectory pins the calendar-soa number;
// the printed speedup documents the engine-rework gain (>=5x gate,
// checked in the PR, advisory here).
//
//   PEERSCOPE_BENCH_JSON=1  writes bench_micro_engine.json
//                           (peerscope.bench schema) for the
//                           trajectory gate.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/harness.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace {

using peerscope::util::Rng;
using peerscope::util::SimTime;

// The pre-change scheduler, embedded verbatim (minus obs publishing,
// which the plain bench path never enabled anyway) so the comparison
// survives the old code's deletion from src/sim.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;

   private:
    friend class LegacyEngine;
    explicit Handle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  Handle schedule_at(SimTime at, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    queue_.push(Item{at, seq});
    live_.emplace(seq, std::move(cb));
    return Handle{seq};
  }

  Handle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(Handle handle) {
    if (handle.id_ == 0) return false;
    return live_.erase(handle.id_) > 0;
  }

  void run_until(SimTime horizon) {
    while (!queue_.empty()) {
      const Item item = queue_.top();
      if (item.at > horizon) break;
      queue_.pop();
      const auto it = live_.find(item.seq);
      if (it == live_.end()) continue;  // cancelled
      Callback cb = std::move(it->second);
      live_.erase(it);
      now_ = item.at;
      ++executed_;
      cb();
    }
  }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    bool operator<(const Item& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Item> queue_;
  std::unordered_map<std::uint64_t, Callback> live_;
};

// Reference spec: every peer runs a 100 ms tick chain; each tick
// mutates per-peer state and fans out two request events with
// jittered sub-second delays, one of which is sometimes cancelled —
// the pending-set size and capture shapes of a real swarm run,
// without the swarm. The default 50k-peer swarm keeps the pending set
// at the scale the engine rework targets (a 2k-peer set fits in L2
// either way and understates the gap); PEERSCOPE_BENCH_FULL_SCALE
// runs the paper-true Asian-peak swarm.
struct WorkloadSpec {
  int peers = 50'000;
  SimTime horizon = SimTime::seconds(20);
  std::uint64_t seed = 42;
};

struct WorkloadResult {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  [[nodiscard]] double events_per_s() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

template <class EngineT>
class Workload {
 public:
  explicit Workload(const WorkloadSpec& spec)
      : spec_(spec), rng_(spec.seed), state_(
            static_cast<std::size_t>(spec.peers), 0) {}

  WorkloadResult run() {
    for (int p = 0; p < spec_.peers; ++p) {
      const auto start =
          SimTime::millis(static_cast<std::int64_t>(rng_.below(100)) + 1);
      const auto peer = static_cast<std::size_t>(p);
      engine_.schedule_at(start, [this, peer] { tick(peer); });
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine_.run_until(spec_.horizon);
    const auto t1 = std::chrono::steady_clock::now();
    WorkloadResult out;
    out.events = engine_.executed();
    out.wall_s = std::chrono::duration<double>(t1 - t0).count();
    return out;
  }

 private:
  void tick(std::size_t peer) {
    state_[peer] =
        state_[peer] * 6364136223846793005ULL + 1442695040888963407ULL;
    // Two fan-out requests per tick. The capture (this + peer + a
    // deadline) tops std::function's small-object buffer, as the real
    // swarm's completion callbacks do.
    for (int k = 0; k < 2; ++k) {
      const auto delay =
          SimTime::millis(static_cast<std::int64_t>(rng_.below(400)) + 10);
      const SimTime deadline = engine_.now() + delay + SimTime::seconds(1);
      auto handle = engine_.schedule_after(
          delay, [this, peer, deadline] { complete(peer, deadline); });
      // A slice of requests is superseded before it fires (partner
      // drop, duplicate chunk): the cancellation path is hot too.
      if (rng_.chance(0.10)) engine_.cancel(handle);
    }
    if (engine_.now() + kPeriod <= spec_.horizon) {
      engine_.schedule_after(kPeriod, [this, peer] { tick(peer); });
    }
  }

  void complete(std::size_t peer, SimTime deadline) {
    state_[peer] ^= static_cast<std::uint64_t>(deadline.ns());
  }

  static constexpr SimTime kPeriod = SimTime::millis(100);

  WorkloadSpec spec_;
  EngineT engine_;
  Rng rng_;
  std::vector<std::uint64_t> state_;
};

void print_row(const char* name, const WorkloadResult& result) {
  std::printf("  %-14s %12llu %9.3f %14.0f\n", name,
              static_cast<unsigned long long>(result.events), result.wall_s,
              result.events_per_s());
}

}  // namespace

int main() {
  using namespace peerscope;

  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  WorkloadSpec spec;
  spec.seed = cfg.seed;
  if (cfg.full_scale) {
    // The paper's Asian-peak PPLive swarm (Table II), no count scaling.
    spec.peers = 181'729;
    spec.horizon = SimTime::seconds(10);
  }

  std::printf(
      "bench_micro_engine -- event-core throughput (%s, %d peers, "
      "%.0fs horizon)\n",
      cfg.full_scale ? "paper-true Asian-peak swarm" : "reference spec",
      spec.peers, spec.horizon.seconds());
  std::printf("  %-14s %12s %9s %14s\n", "scheduler", "events", "wall_s",
              "events/s");

  // Legacy first, current second, so the numbers the JSON session
  // captures (events executed + wall) describe the shipping engine.
  Workload<LegacyEngine> legacy{spec};
  const WorkloadResult before = legacy.run();
  print_row("legacy-heap", before);

  WorkloadResult after;
  {
    bench::BenchJsonSession json{"bench_micro_engine"};
    Workload<sim::Engine> current{spec};
    after = current.run();
  }
  print_row("calendar-soa", after);

  const double speedup =
      before.events_per_s() > 0 ? after.events_per_s() / before.events_per_s()
                                : 0.0;
  const bool identical = before.events == after.events;
  std::printf("  speedup: %.2fx  %s (engine-rework gate: >=5x)\n", speedup,
              speedup >= 5.0 ? "[ok]" : "[LOW]");
  std::printf("  identical event counts: %s\n",
              identical ? "[ok]" : "[FAIL]");
  return identical ? 0 : 1;
}
