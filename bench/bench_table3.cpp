// Table III: NAPA-WINE self-induced bias — the share of peers and bytes
// that the probes exchange among themselves, over contributors and over
// all peers, paper vs measured.
#include <iostream>

#include "bench/harness.hpp"

using namespace peerscope;
using namespace peerscope::bench;

int main() {
  bench::MetricsSession metrics_session;
  bench::TraceSession trace_session;
  const BenchConfig cfg = BenchConfig::from_env();
  const net::AsTopology topo = net::make_reference_topology();
  std::cout << "=== Table III: self-induced bias (paper vs measured) ===\n\n";

  const auto results = run_three_apps(topo, cfg);

  util::TextTable table{{"App", "src", "contrib Peer%", "contrib Bytes%",
                         "all Peer%", "all Bytes%"}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& paper = kPaperTable3[i];
    const aware::SelfBias bias = aware::self_bias(results[i].observations);
    table.add_row({paper.app, "paper", fmt(paper.contrib_peer_pct, 2),
                   fmt(paper.contrib_bytes_pct, 2), fmt(paper.all_peer_pct, 2),
                   fmt(paper.all_bytes_pct, 2)});
    table.add_row({"", "ours", fmt(bias.contributors_peer_pct, 2),
                   fmt(bias.contributors_bytes_pct, 2),
                   fmt(bias.all_peers_peer_pct, 2),
                   fmt(bias.all_peers_bytes_pct, 2)});
    table.add_rule();
  }
  std::cout << table.render();

  std::cout << "\nshape checks (must hold):\n";
  std::vector<double> byte_shares;
  bool byte_over_peer = true;
  for (const auto& result : results) {
    const auto bias = aware::self_bias(result.observations);
    byte_shares.push_back(bias.contributors_bytes_pct);
    // PPLive's peer share is a scale artifact (the fixed 46-probe set
    // against a 1/12-scale contributor population — EXPERIMENTS.md);
    // the byte-over-peer property is meaningful for the two systems
    // whose swarms are near scale.
    if (result.observations.app != "PPLive" &&
        bias.contributors_bytes_pct < bias.contributors_peer_pct) {
      byte_over_peer = false;
    }
  }
  const bool tvants_most = byte_shares[2] > byte_shares[1] &&
                           byte_shares[1] > byte_shares[0];
  std::cout << "  probes' byte share exceeds their peer share "
               "(SopCast, TVAnts): "
            << (byte_over_peer ? "yes" : "NO") << '\n';
  std::cout << "  self-bias ordering TVAnts > SopCast > PPLive: "
            << (tvants_most ? "yes" : "NO") << '\n';
  return 0;
}
