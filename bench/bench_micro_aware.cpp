// Microbenchmarks for the analysis pipeline: flow aggregation,
// longest-prefix matching, observation extraction and the preference
// framework — the per-trace costs of the paper's methodology.
#include <benchmark/benchmark.h>

#include "aware/observation.hpp"
#include "aware/preference.hpp"
#include "net/allocator.hpp"
#include "trace/flow.hpp"
#include "util/rng.hpp"

using namespace peerscope;

namespace {

std::vector<trace::PacketRecord> synth_records(std::size_t n,
                                               std::size_t peers) {
  util::Rng rng{11};
  std::vector<trace::PacketRecord> records;
  records.reserve(n);
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ts += static_cast<std::int64_t>(rng.below(300'000)) + 1;
    trace::PacketRecord r;
    r.ts = util::SimTime::nanos(ts);
    r.remote = net::Ipv4Addr{static_cast<std::uint32_t>(
        0x14000000u + rng.below(peers))};
    r.bytes = rng.chance(0.8) ? 1250 : 120;
    r.kind = r.bytes == 1250 ? sim::PacketKind::kVideo
                             : sim::PacketKind::kSignaling;
    r.dir = rng.chance(0.6) ? trace::Direction::kRx : trace::Direction::kTx;
    r.ttl = static_cast<std::uint8_t>(100 + rng.below(25));
    records.push_back(r);
  }
  return records;
}

void BM_FlowTableAdd(benchmark::State& state) {
  const auto records =
      synth_records(static_cast<std::size_t>(state.range(0)), 500);
  for (auto _ : state) {
    trace::FlowTable table{net::Ipv4Addr{10, 0, 0, 1}};
    for (const auto& r : records) table.add(r);
    benchmark::DoNotOptimize(table.flow_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FlowTableAdd)->Arg(10'000)->Arg(100'000);

void BM_LongestPrefixMatch(benchmark::State& state) {
  net::NetRegistry registry;
  net::AddressAllocator alloc{registry};
  for (std::uint32_t i = 1; i <= 40; ++i) {
    alloc.register_as(net::AsId{i}, net::kChina);
  }
  util::Rng rng{5};
  for (auto _ : state) {
    const net::Ipv4Addr addr{
        static_cast<std::uint32_t>((20u << 24) + rng.below(40u << 16))};
    benchmark::DoNotOptimize(registry.as_of(addr));
  }
}
BENCHMARK(BM_LongestPrefixMatch);

void BM_ExtractObservations(benchmark::State& state) {
  net::NetRegistry registry;
  net::AddressAllocator alloc{registry};
  alloc.register_as(net::AsId{1}, net::kItaly);
  registry.announce(*net::Ipv4Prefix::parse("20.0.0.0/8"), net::AsId{210},
                    net::kChina);
  trace::FlowTable table{net::Ipv4Addr{10, 0, 0, 1}};
  for (const auto& r : synth_records(100'000, 2'000)) table.add(r);
  const std::unordered_set<net::Ipv4Addr> napa{net::Ipv4Addr{10, 0, 0, 1}};
  for (auto _ : state) {
    const auto obs = aware::extract_observations(table, registry, napa);
    benchmark::DoNotOptimize(obs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.flow_count()));
}
BENCHMARK(BM_ExtractObservations);

void BM_EvaluatePreference(benchmark::State& state) {
  util::Rng rng{7};
  std::vector<aware::PairObservation> observations;
  for (int i = 0; i < 5'000; ++i) {
    aware::PairObservation obs;
    obs.probe_as = net::AsId{2};
    obs.remote_as = rng.chance(0.05) ? net::AsId{2} : net::AsId{210};
    obs.rx_video_pkts = rng.below(100);
    obs.rx_video_bytes = obs.rx_video_pkts * 1250;
    observations.push_back(obs);
  }
  const aware::Partition partition = aware::as_partition();
  const aware::PreferenceOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aware::evaluate_preference(observations, partition, options)
            .peers_pref);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          5'000);
}
BENCHMARK(BM_EvaluatePreference);

}  // namespace

BENCHMARK_MAIN();
